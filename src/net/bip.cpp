#include "net/bip.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace mad2::net {

BipParams BipParams::myrinet_lanai43() {
  BipParams p;
  p.fabric.name = "myrinet";
  p.fabric.wire_mbs = 160.0;  // Myrinet link, full duplex per port
  p.fabric.propagation = sim::nanoseconds(500);
  p.fabric.per_packet = sim::from_us(1.0);  // LANai firmware per packet
  p.fabric.wire_chunk_bytes = 4096;
  p.fabric.rx_slots = 200;  // ~1 MB SRAM / 4 kB packets (phys. buffering)
  return p;
}

BipNetwork::BipNetwork(sim::Simulator* simulator,
                       std::vector<hw::Node*> nodes, BipParams params)
    : simulator_(simulator),
      params_(std::move(params)),
      fabric_(simulator, params_.fabric) {
  MAD2_CHECK(params_.long_mtu > 0, "long_mtu must be positive");
  for (hw::Node* node : nodes) {
    const std::uint32_t rank = fabric_.add_port();
    ports_.emplace_back(new BipPort(this, node, rank));
  }
}

BipNetwork::~BipNetwork() = default;

// -------------------------------------------------------------- BipPort ---

BipPort::BipPort(BipNetwork* network, hw::Node* node, std::uint32_t rank)
    : network_(network), node_(node), rank_(rank) {
  any_short_arrival_ = std::make_unique<sim::WaitQueue>(network_->simulator_);
  tx_stage_ = std::make_unique<sim::BoundedChannel<Packet>>(
      network_->simulator_, network_->params_.tx_stage_depth);
  network_->simulator_->spawn_daemon(
      "bip.tx." + std::to_string(rank), [this] { tx_loop(); });
  network_->simulator_->spawn_daemon(
      "bip.rx." + std::to_string(rank), [this] { rx_loop(); });
}

BipPort::TagQueue& BipPort::tag_queue(std::uint32_t tag) {
  TagQueue& queue = short_queues_[tag];
  if (!queue.arrival) {
    queue.arrival =
        std::make_unique<sim::WaitQueue>(network_->simulator_);
  }
  return queue;
}

BipPort::PostedQueue& BipPort::posted_queue(std::uint32_t src,
                                            std::uint32_t tag) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | tag;
  PostedQueue& queue = posted_[key];
  if (!queue.completion) {
    queue.completion =
        std::make_unique<sim::WaitQueue>(network_->simulator_);
  }
  return queue;
}

void BipPort::stage_packet(Packet packet) {
  // The NIC pulls the data from host memory over PCI (bus-master DMA);
  // the caller regains its buffer once this completes.
  const std::uint64_t bus_bytes =
      packet.data.size() + network_->params_.header_bytes;
  node_->pci_bus().transfer(bus_bytes, node_->params().pci_dma_mbs,
                            hw::TxClass::kDma, node_->nic_initiator_id(0));
  tx_stage_->send(std::move(packet));
}

void BipPort::tx_loop() {
  for (;;) {
    auto packet = tx_stage_->receive();
    if (!packet.has_value()) return;
    const std::uint32_t dest = packet->dst;
    const std::uint64_t wire_bytes =
        packet->data.size() + network_->params_.header_bytes;
    network_->fabric_.ship(rank_, dest, std::move(*packet), wire_bytes);
  }
}

void BipPort::send_short(std::uint32_t dst, std::uint32_t tag,
                         std::span<const std::byte> data) {
  MAD2_CHECK(data.size() <= network_->params_.short_max_bytes,
             "send_short oversized message");
  node_->charge_cpu(network_->params_.tx_overhead);
  Packet packet;
  packet.kind = BipNetwork::PacketKind::kShort;
  packet.src = rank_;
  packet.dst = dst;
  packet.tag = tag;
  packet.offset = 0;
  packet.total_len = data.size();
  packet.data.assign(data.begin(), data.end());
  stage_packet(std::move(packet));
}

void BipPort::send_long(std::uint32_t dst, std::uint32_t tag,
                        std::span<const std::byte> data) {
  node_->charge_cpu(network_->params_.tx_overhead);
  node_->charge_cpu(network_->params_.long_setup);
  const std::uint64_t total = data.size();
  std::uint64_t offset = 0;
  do {
    const std::uint64_t chunk = std::min<std::uint64_t>(
        total - offset, network_->params_.long_mtu);
    Packet packet;
    packet.kind = BipNetwork::PacketKind::kLongChunk;
    packet.src = rank_;
    packet.dst = dst;
    packet.tag = tag;
    packet.offset = offset;
    packet.total_len = total;
    packet.data.assign(data.begin() + offset, data.begin() + offset + chunk);
    stage_packet(std::move(packet));
    offset += chunk;
  } while (offset < total);
}

void BipPort::rx_loop() {
  for (;;) {
    // Chained receive DMA: when several packets are queued in NIC SRAM,
    // the LANai pushes them to host memory as one multi-descriptor burst.
    // The burst holds the PCI bus against programmed I/O (the Section
    // 6.2.3 effect) and amortizes bus turnaround.
    std::vector<Packet> batch;
    batch.push_back(network_->fabric_.receive(rank_));
    while (batch.size() < 8) {
      auto more = network_->fabric_.try_receive(rank_);
      if (!more.has_value()) break;
      batch.push_back(std::move(*more));
    }
    std::uint64_t bus_bytes = 0;
    for (const Packet& packet : batch) {
      bus_bytes += packet.data.size() + network_->params_.header_bytes;
    }
    node_->pci_bus().transfer(bus_bytes, node_->params().pci_dma_mbs,
                              hw::TxClass::kDma, node_->nic_initiator_id(0));
    for (Packet& packet : batch) {
      if (packet.kind == BipNetwork::PacketKind::kShort) {
        handle_short(std::move(packet));
      } else {
        handle_long_chunk(std::move(packet));
      }
    }
  }
}

void BipPort::handle_short(Packet packet) {
  MAD2_CHECK(short_slots_in_use_ < network_->params_.short_host_slots,
             "BIP short buffer pool overflow: missing flow control "
             "(Madeleine's credit TM must bound in-flight shorts)");
  ++short_slots_in_use_;
  TagQueue& queue = tag_queue(packet.tag);
  queue.entries.push_back(
      ShortQueueEntry{packet.src, std::move(packet.data), next_slot_id_++});
  queue.arrival->notify_all();
  any_short_arrival_->notify_all();
}

void BipPort::handle_long_chunk(Packet packet) {
  PostedQueue& queue = posted_queue(packet.src, packet.tag);
  PostedRecv* recv = nullptr;
  for (PostedRecv& candidate : queue.posts) {
    if (!candidate.complete) {
      recv = &candidate;
      break;
    }
  }
  MAD2_CHECK(recv != nullptr,
             "BIP long chunk with no posted receive: missing rendezvous "
             "(Madeleine's long TM must synchronize sender and receiver)");
  MAD2_CHECK(recv->out.size() >= packet.offset + packet.data.size(),
             "BIP long chunk overflows the posted receive buffer");
  std::copy(packet.data.begin(), packet.data.end(),
            recv->out.begin() + packet.offset);
  recv->received += packet.data.size();
  if (recv->received >= packet.total_len) {
    recv->complete = true;
    queue.completion->notify_all();
  }
}

BipShortSlot BipPort::recv_short(std::uint32_t tag) {
  TagQueue& queue = tag_queue(tag);
  while (queue.entries.empty()) queue.arrival->wait();
  ShortQueueEntry entry = std::move(queue.entries.front());
  queue.entries.pop_front();
  node_->charge_cpu(network_->params_.rx_overhead);
  BipShortSlot slot;
  slot.src = entry.src;
  slot.tag = tag;
  slot.slot_id = entry.slot_id;
  auto [it, inserted] =
      checked_out_.emplace(entry.slot_id, std::move(entry.data));
  MAD2_CHECK(inserted, "duplicate short slot id");
  slot.data = std::span<const std::byte>(it->second);
  return slot;
}

void BipPort::release_short(const BipShortSlot& slot) {
  const auto erased = checked_out_.erase(slot.slot_id);
  MAD2_CHECK(erased == 1, "release_short on unknown slot");
  MAD2_CHECK(short_slots_in_use_ > 0, "short slot accounting underflow");
  --short_slots_in_use_;
}

std::size_t BipPort::recv_short_copy(std::uint32_t tag,
                                     std::span<std::byte> out,
                                     std::uint32_t* src) {
  BipShortSlot slot = recv_short(tag);
  MAD2_CHECK(out.size() >= slot.data.size(),
             "recv_short_copy output buffer too small");
  node_->charge_memcpy(slot.data.size());
  std::copy(slot.data.begin(), slot.data.end(), out.begin());
  if (src != nullptr) *src = slot.src;
  const std::size_t n = slot.data.size();
  release_short(slot);
  return n;
}

bool BipPort::short_pending(std::uint32_t tag) const {
  auto it = short_queues_.find(tag);
  return it != short_queues_.end() && !it->second.entries.empty();
}

std::uint32_t BipPort::wait_short(std::uint32_t tag) {
  TagQueue& queue = tag_queue(tag);
  while (queue.entries.empty()) queue.arrival->wait();
  return queue.entries.front().src;
}

std::uint32_t BipPort::wait_short_multi(
    const std::vector<std::uint32_t>& tags) {
  MAD2_CHECK(!tags.empty(), "wait_short_multi with no tags");
  for (;;) {
    for (std::uint32_t tag : tags) {
      if (short_pending(tag)) return tag;
    }
    any_short_arrival_->wait();
  }
}

void BipPort::post_recv_long(std::uint32_t src, std::uint32_t tag,
                             std::span<std::byte> out) {
  // Posting pins the buffer and programs the NIC before the sender may
  // transmit (BIP's strict synchronization).
  node_->charge_cpu(network_->params_.long_setup);
  posted_queue(src, tag).posts.push_back(PostedRecv{out, 0, false});
}

void BipPort::wait_recv_long(std::uint32_t src, std::uint32_t tag) {
  PostedQueue& queue = posted_queue(src, tag);
  MAD2_CHECK(!queue.posts.empty(), "wait_recv_long with nothing posted");
  while (!queue.posts.front().complete) queue.completion->wait();
  queue.posts.pop_front();
  node_->charge_cpu(network_->params_.rx_overhead);
}

}  // namespace mad2::net
