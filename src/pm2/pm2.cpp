#include "pm2/pm2.hpp"

namespace mad2::pm2 {

Pm2World::Pm2World(mad::Session& session, std::string channel_name)
    : session_(&session), channel_name_(std::move(channel_name)) {
  for (std::uint32_t node : session_->channel(channel_name_).nodes()) {
    nodes_.emplace(node, std::unique_ptr<Pm2Node>(new Pm2Node(this, node)));
  }
}

Pm2World::~Pm2World() = default;

Pm2Node& Pm2World::node(std::uint32_t id) {
  auto it = nodes_.find(id);
  MAD2_CHECK(it != nodes_.end(), "node is not part of this PM2 world");
  return *it->second;
}

Pm2Node::Pm2Node(Pm2World* world, std::uint32_t node)
    : world_(world), node_(node) {
  world_->session().simulator().spawn_daemon(
      "pm2.dispatch." + std::to_string(node), [this] { dispatch_loop(); });
}

void Pm2Node::register_service(ServiceId id, Service service) {
  const bool inserted = services_.emplace(id, std::move(service)).second;
  MAD2_CHECK(inserted, "service id registered twice");
}

void Pm2Node::send_message(std::uint32_t dst, const Header& header,
                           std::span<const std::byte> payload) {
  mad::ChannelEndpoint& ep =
      world_->session().endpoint(world_->channel_name(), node_);
  mad::Connection& conn = ep.begin_packing(dst);
  mad::mad_pack_value(conn, header, mad::send_CHEAPER, mad::receive_EXPRESS);
  conn.pack(payload, mad::send_CHEAPER, mad::receive_CHEAPER);
  conn.end_packing();
}

RpcFuture Pm2Node::async_rpc(std::uint32_t dst, ServiceId service,
                             std::span<const std::byte> argument) {
  auto& node = world_->session().node(node_);
  node.charge_cpu(world_->per_call_cost);

  RpcFuture future;
  future.state_ =
      std::make_shared<RpcFuture::State>(&world_->session().simulator());
  const std::uint64_t call_id = next_call_id_++;
  pending_.emplace(call_id, future.state_);

  const Header header{Kind::kRequest, service, call_id,
                      static_cast<std::uint32_t>(argument.size())};
  send_message(dst, header, argument);
  return future;
}

std::vector<std::byte> Pm2Node::wait(RpcFuture& future) {
  MAD2_CHECK(future.valid(), "wait on an empty RPC future");
  while (!future.state_->done) future.state_->wq.wait();
  return std::move(future.state_->result);
}

std::vector<std::byte> Pm2Node::rpc(std::uint32_t dst, ServiceId service,
                                    std::span<const std::byte> argument) {
  RpcFuture future = async_rpc(dst, service, argument);
  return wait(future);
}

void Pm2Node::quick_rpc(std::uint32_t dst, ServiceId service,
                        std::span<const std::byte> argument) {
  auto& node = world_->session().node(node_);
  node.charge_cpu(world_->per_call_cost);
  const Header header{Kind::kOneway, service, 0,
                      static_cast<std::uint32_t>(argument.size())};
  send_message(dst, header, argument);
}

void Pm2Node::run_service(std::uint32_t src, ServiceId service,
                          std::uint64_t call_id,
                          std::vector<std::byte> argument,
                          bool wants_reply) {
  auto it = services_.find(service);
  MAD2_CHECK(it != services_.end(), "RPC to unregistered service");
  std::vector<std::byte> reply = it->second(src, argument);
  if (wants_reply) {
    const Header header{Kind::kReply, 0, call_id,
                        static_cast<std::uint32_t>(reply.size())};
    send_message(src, header, reply);
  }
}

void Pm2Node::dispatch_loop() {
  mad::ChannelEndpoint& ep =
      world_->session().endpoint(world_->channel_name(), node_);
  auto& node = world_->session().node(node_);
  for (;;) {
    mad::Connection& conn = ep.begin_unpacking();
    Header header{};
    mad::mad_unpack_value(conn, header, mad::send_CHEAPER,
                          mad::receive_EXPRESS);
    std::vector<std::byte> payload(header.size);
    conn.unpack(payload, mad::send_CHEAPER, mad::receive_CHEAPER);
    const std::uint32_t src = conn.remote();
    conn.end_unpacking();
    node.charge_cpu(world_->per_call_cost);

    switch (header.kind) {
      case Kind::kRequest:
      case Kind::kOneway: {
        // Thread-per-request: the service runs in its own fiber so it may
        // block or issue nested RPCs without stalling this dispatcher.
        const bool wants_reply = header.kind == Kind::kRequest;
        world_->session().simulator().spawn(
            "pm2.service." + std::to_string(node_),
            [this, src, header, wants_reply,
             argument = std::move(payload)]() mutable {
              run_service(src, header.service, header.call_id,
                          std::move(argument), wants_reply);
            });
        break;
      }
      case Kind::kReply: {
        auto it = pending_.find(header.call_id);
        MAD2_CHECK(it != pending_.end(), "reply for unknown call id");
        it->second->result = std::move(payload);
        it->second->done = true;
        it->second->wq.notify_all();
        pending_.erase(it);
        break;
      }
    }
  }
}

}  // namespace mad2::pm2
