// Mini-PM2: the RPC-based multithreaded runtime Madeleine II was designed
// for (paper Section 1: "environments providing an RPC-based programming
// model such as Nexus or PM2"; reference [10]).
//
// The model: nodes register *services*; any node issues LRPCs (lightweight
// remote procedure calls) against them. Each incoming request runs in its
// own fiber (PM2's thread-per-request model), so services may block, issue
// nested RPCs, or compute at length without stalling the node. Three call
// flavours:
//   rpc        — synchronous: blocks until the reply payload arrives
//   async_rpc  — returns a future; wait()/get() later
//   quick_rpc  — one-way, no reply (PM2's QUICK_ASYNC class)
//
// Wire format per call over the Madeleine channel: a header packed
// receive_EXPRESS ({kind, service, call id, size} — the dispatcher needs
// it to route), then the payload receive_CHEAPER. The paper's Section 2.2
// RPC example is exactly this shape.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "mad/madeleine.hpp"

namespace mad2::pm2 {

using ServiceId = std::uint32_t;

/// Completion handle for async_rpc.
class RpcFuture {
 public:
  RpcFuture() = default;
  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const { return state_ && state_->done; }

  struct State {
    explicit State(sim::Simulator* simulator) : wq(simulator) {}
    bool done = false;
    std::vector<std::byte> result;
    sim::WaitQueue wq;
  };
  std::shared_ptr<State> state_;
};

class Pm2World;

/// One node's PM2 runtime.
class Pm2Node {
 public:
  /// A service: (caller node, request bytes) -> reply bytes. Runs in its
  /// own fiber per invocation.
  using Service = std::function<std::vector<std::byte>(
      std::uint32_t, std::span<const std::byte>)>;

  void register_service(ServiceId id, Service service);

  /// Synchronous call: returns the reply payload.
  std::vector<std::byte> rpc(std::uint32_t dst, ServiceId service,
                             std::span<const std::byte> argument);

  /// Asynchronous call: returns immediately with a future.
  RpcFuture async_rpc(std::uint32_t dst, ServiceId service,
                      std::span<const std::byte> argument);

  /// Block until `future` completes; returns the reply payload.
  std::vector<std::byte> wait(RpcFuture& future);

  /// One-way call: the service runs remotely, no reply is produced.
  void quick_rpc(std::uint32_t dst, ServiceId service,
                 std::span<const std::byte> argument);

  [[nodiscard]] std::uint32_t node() const { return node_; }

 private:
  friend class Pm2World;
  Pm2Node(Pm2World* world, std::uint32_t node);

  enum class Kind : std::uint32_t { kRequest = 1, kReply = 2, kOneway = 3 };
  struct Header {
    Kind kind;
    ServiceId service;  // or 0 for replies
    std::uint64_t call_id;
    std::uint32_t size;
  };

  void send_message(std::uint32_t dst, const Header& header,
                    std::span<const std::byte> payload);
  void dispatch_loop();
  void run_service(std::uint32_t src, ServiceId service,
                   std::uint64_t call_id, std::vector<std::byte> argument,
                   bool wants_reply);

  Pm2World* world_;
  std::uint32_t node_;
  std::map<ServiceId, Service> services_;
  std::uint64_t next_call_id_ = 1;
  std::map<std::uint64_t, std::shared_ptr<RpcFuture::State>> pending_;
};

/// The runtime over one dedicated Madeleine channel.
class Pm2World {
 public:
  Pm2World(mad::Session& session, std::string channel_name);
  ~Pm2World();

  [[nodiscard]] Pm2Node& node(std::uint32_t id);
  [[nodiscard]] mad::Session& session() { return *session_; }
  [[nodiscard]] const std::string& channel_name() const {
    return channel_name_;
  }

  /// Per-call software cost of the runtime (marshalling, thread start).
  sim::Duration per_call_cost = sim::from_us(1.5);

 private:
  mad::Session* session_;
  std::string channel_name_;
  std::map<std::uint32_t, std::unique_ptr<Pm2Node>> nodes_;
};

}  // namespace mad2::pm2
