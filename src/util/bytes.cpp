#include "util/bytes.hpp"

namespace mad2 {

namespace {
inline std::byte pattern_byte(std::uint64_t seed, std::size_t i) {
  // Mix position and seed; cheap but position-sensitive.
  const std::uint64_t x =
      (seed * 0x9e3779b97f4a7c15ULL) ^ (static_cast<std::uint64_t>(i) *
                                        0xbf58476d1ce4e5b9ULL);
  return static_cast<std::byte>((x >> 32) & 0xff);
}
}  // namespace

void fill_pattern(std::span<std::byte> dst, std::uint64_t seed) {
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = pattern_byte(seed, i);
  }
}

bool verify_pattern(std::span<const std::byte> src, std::uint64_t seed) {
  for (std::size_t i = 0; i < src.size(); ++i) {
    if (src[i] != pattern_byte(seed, i)) return false;
  }
  return true;
}

std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::vector<std::byte> make_pattern_buffer(std::size_t size,
                                           std::uint64_t seed) {
  std::vector<std::byte> buf(size);
  fill_pattern(buf, seed);
  return buf;
}

}  // namespace mad2
