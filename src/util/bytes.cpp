#include "util/bytes.hpp"

#include <cstring>

namespace mad2 {

namespace {
inline std::byte pattern_byte(std::uint64_t seed, std::size_t i) {
  // Mix position and seed; cheap but position-sensitive.
  const std::uint64_t x =
      (seed * 0x9e3779b97f4a7c15ULL) ^ (static_cast<std::uint64_t>(i) *
                                        0xbf58476d1ce4e5b9ULL);
  return static_cast<std::byte>((x >> 32) & 0xff);
}

// Word-at-a-time kernels below produce 8 pattern bytes per iteration into a
// lane array and memcpy/memcmp the block — bit-identical to the scalar loop
// on any endianness (each lane is computed independently, never packed into
// an integer), and a shape compilers unroll and vectorize readily.
constexpr std::size_t kLanes = 8;
}  // namespace

void fill_pattern(std::span<std::byte> dst, std::uint64_t seed) {
  std::size_t i = 0;
  const std::size_t wide = dst.size() - dst.size() % kLanes;
  for (; i < wide; i += kLanes) {
    std::byte lane[kLanes];
    for (std::size_t k = 0; k < kLanes; ++k) {
      lane[k] = pattern_byte(seed, i + k);
    }
    std::memcpy(dst.data() + i, lane, kLanes);
  }
  for (; i < dst.size(); ++i) {  // scalar tail
    dst[i] = pattern_byte(seed, i);
  }
}

bool verify_pattern(std::span<const std::byte> src, std::uint64_t seed) {
  std::size_t i = 0;
  const std::size_t wide = src.size() - src.size() % kLanes;
  for (; i < wide; i += kLanes) {
    std::byte lane[kLanes];
    for (std::size_t k = 0; k < kLanes; ++k) {
      lane[k] = pattern_byte(seed, i + k);
    }
    if (std::memcmp(src.data() + i, lane, kLanes) != 0) return false;
  }
  for (; i < src.size(); ++i) {  // scalar tail
    if (src[i] != pattern_byte(seed, i)) return false;
  }
  return true;
}

std::uint64_t fnv1a(std::span<const std::byte> data) {
  // FNV-1a's chain is inherently sequential, but loading 8 bytes per trip
  // through a lane array halves the per-byte loop overhead while keeping
  // the byte-ordered multiply chain (and thus the hash value) unchanged.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  std::size_t i = 0;
  const std::size_t wide = data.size() - data.size() % kLanes;
  for (; i < wide; i += kLanes) {
    std::uint8_t lane[kLanes];
    std::memcpy(lane, data.data() + i, kLanes);
    for (std::size_t k = 0; k < kLanes; ++k) {
      hash = (hash ^ lane[k]) * kPrime;
    }
  }
  for (; i < data.size(); ++i) {  // scalar tail
    hash = (hash ^ static_cast<std::uint64_t>(data[i])) * kPrime;
  }
  return hash;
}

std::vector<std::byte> make_pattern_buffer(std::size_t size,
                                           std::uint64_t seed) {
  std::vector<std::byte> buf(size);
  fill_pattern(buf, seed);
  return buf;
}

}  // namespace mad2
