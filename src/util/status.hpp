// Lightweight error-handling primitives for the Madeleine II reproduction.
//
// The library is exception-free on its hot paths: operations that can fail
// return a `Status` (or a `Result<T>` when they also produce a value).
// Irrecoverable programming errors (violated preconditions) abort via
// MAD2_CHECK, mirroring the assert-heavy style of the original PM2 code
// base while keeping release builds checked.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mad2 {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kUnimplemented,
  kOutOfRange,
  kProtocolError,
  kClosed,
  /// A peer or link is unreachable (e.g. the reliable shim gave up
  /// retransmitting across a partition). Retrying later may succeed.
  kUnavailable,
  kInternal,
};

/// Human-readable name of an ErrorCode ("OK", "INVALID_ARGUMENT", ...).
std::string_view error_code_name(ErrorCode code);

/// Value-semantic status: either OK, or an error code plus a message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>" for logs and test failures.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {ErrorCode::kInvalidArgument, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {ErrorCode::kFailedPrecondition, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {ErrorCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {ErrorCode::kAlreadyExists, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {ErrorCode::kResourceExhausted, std::move(msg)};
}
inline Status unimplemented(std::string msg) {
  return {ErrorCode::kUnimplemented, std::move(msg)};
}
inline Status out_of_range(std::string msg) {
  return {ErrorCode::kOutOfRange, std::move(msg)};
}
inline Status protocol_error(std::string msg) {
  return {ErrorCode::kProtocolError, std::move(msg)};
}
inline Status channel_closed(std::string msg) {
  return {ErrorCode::kClosed, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {ErrorCode::kUnavailable, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {ErrorCode::kInternal, std::move(msg)};
}

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts, so callers must test `is_ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : payload_(std::move(value)) {}        // NOLINT(implicit)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT(implicit)
    if (std::get<Status>(payload_).is_ok()) {
      std::fprintf(stderr, "Result<T> constructed from OK status\n");
      std::abort();
    }
  }

  [[nodiscard]] bool is_ok() const {
    return std::holds_alternative<T>(payload_);
  }
  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(payload_);
  }
  [[nodiscard]] T& value() & {
    check_ok();
    return std::get<T>(payload_);
  }
  [[nodiscard]] const T& value() const& {
    check_ok();
    return std::get<T>(payload_);
  }
  [[nodiscard]] T&& value() && {
    check_ok();
    return std::get<T>(std::move(payload_));
  }

 private:
  void check_ok() const {
    if (!is_ok()) {
      std::fprintf(stderr, "Result<T>::value() on error: %s\n",
                   std::get<Status>(payload_).to_string().c_str());
      std::abort();
    }
  }
  std::variant<T, Status> payload_;
};

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const char* msg);

}  // namespace mad2

// Precondition check, active in all build types. `msg` is a plain C string.
#define MAD2_CHECK(expr, msg)                                \
  do {                                                       \
    if (!(expr)) {                                           \
      ::mad2::check_failed(__FILE__, __LINE__, #expr, msg);  \
    }                                                        \
  } while (0)

// Early-return on error for Status-returning functions.
#define MAD2_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::mad2::Status mad2_status_ = (expr);           \
    if (!mad2_status_.is_ok()) return mad2_status_; \
  } while (0)
