#include "util/debug_hook.hpp"

namespace mad2 {

namespace {
FailureDumpHook g_hook = nullptr;
bool g_in_hook = false;
}  // namespace

void set_failure_dump_hook(FailureDumpHook hook) { g_hook = hook; }

void invoke_failure_dump_hook(const char* reason) {
  if (g_hook == nullptr || g_in_hook) return;
  g_in_hook = true;
  g_hook(reason);
  g_in_hook = false;
}

}  // namespace mad2
