// Statistics helpers for the benchmark harnesses: running moments,
// quantile-capable sample sets, and the latency/bandwidth series used to
// print the paper's figures as tables.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mad2 {

/// Online mean / min / max / stddev without storing samples.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const { return count_ != 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ != 0 ? max_ : 0.0; }
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples; supports exact quantiles. Used by latency tests.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  /// q-quantile (q in [0,1]) with linear interpolation; 0 samples -> 0.
  [[nodiscard]] double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  [[nodiscard]] double median() const { return quantile(0.5); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// One point of a figure: message size vs one-way latency (us) and
/// bandwidth (MB/s, decimal megabytes as in the paper).
struct PerfPoint {
  std::uint64_t size_bytes = 0;
  double latency_us = 0.0;
  double bandwidth_mbs = 0.0;
  /// Per-iteration one-way latency percentiles (0 when the harness did
  /// not collect per-iteration samples for this point).
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// A labeled curve of PerfPoints (one line of a paper figure).
struct PerfSeries {
  std::string label;
  std::vector<PerfPoint> points;

  /// Latency at the smallest measured size (the paper's "minimal latency").
  [[nodiscard]] double min_latency_us() const;
  /// Peak bandwidth across the curve.
  [[nodiscard]] double peak_bandwidth_mbs() const;
  /// Bandwidth at an exact size, or 0 if that size was not measured.
  [[nodiscard]] double bandwidth_at(std::uint64_t size_bytes) const;
};

/// Geometric sweep of message sizes: lo, 2*lo, ..., <= hi (always includes
/// hi). Matches the log-scale x-axes of the paper's figures.
std::vector<std::uint64_t> geometric_sizes(std::uint64_t lo, std::uint64_t hi,
                                           unsigned per_octave = 1);

}  // namespace mad2
