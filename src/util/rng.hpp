// Deterministic pseudo-random number generation (xoshiro256**).
//
// Workload generators and property tests need reproducible randomness that
// is identical across platforms and standard-library versions, which rules
// out std::mt19937 + std::uniform_int_distribution (the distribution is not
// portable). Everything here is fully specified.
#pragma once

#include <cstdint>

namespace mad2 {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Debiased modulo (Lemire-style rejection would be overkill here; the
    // simulator only needs statistical uniformity for workload shapes).
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace mad2
