// Process-wide failure hook. Low layers (MAD2_CHECK aborts, madcheck's
// failure recorder, the reliable shim's give-up path) call
// invoke_failure_dump_hook just before reporting a fatal condition;
// higher layers — in practice obs::install_recorder — register a dump
// function here. util must not depend on obs, so the indirection lives
// down here as a bare function pointer.
#pragma once

namespace mad2 {

using FailureDumpHook = void (*)(const char* reason);

/// Replaces any previous hook; nullptr disarms.
void set_failure_dump_hook(FailureDumpHook hook);

/// Calls the installed hook, guarding against reentry (a hook that
/// itself fails a check must not recurse). No-op when disarmed.
void invoke_failure_dump_hook(const char* reason);

}  // namespace mad2
