#include "util/stats.hpp"

namespace mad2 {

double PerfSeries::min_latency_us() const {
  double best = std::numeric_limits<double>::infinity();
  for (const PerfPoint& p : points) best = std::min(best, p.latency_us);
  return points.empty() ? 0.0 : best;
}

double PerfSeries::peak_bandwidth_mbs() const {
  double best = 0.0;
  for (const PerfPoint& p : points) best = std::max(best, p.bandwidth_mbs);
  return best;
}

double PerfSeries::bandwidth_at(std::uint64_t size_bytes) const {
  for (const PerfPoint& p : points) {
    if (p.size_bytes == size_bytes) return p.bandwidth_mbs;
  }
  return 0.0;
}

std::vector<std::uint64_t> geometric_sizes(std::uint64_t lo, std::uint64_t hi,
                                           unsigned per_octave) {
  std::vector<std::uint64_t> sizes;
  if (lo == 0 || hi < lo) return sizes;
  if (per_octave == 0) per_octave = 1;
  const double factor = std::pow(2.0, 1.0 / per_octave);
  double cur = static_cast<double>(lo);
  std::uint64_t last = 0;
  while (cur < static_cast<double>(hi)) {
    const auto s = static_cast<std::uint64_t>(cur + 0.5);
    if (s != last) {
      sizes.push_back(s);
      last = s;
    }
    cur *= factor;
  }
  if (last != hi) sizes.push_back(hi);
  return sizes;
}

}  // namespace mad2
