// Byte-buffer helpers used across the library and the tests: deterministic
// fill patterns, verification, FNV-1a checksums, and little-endian
// encode/decode for the self-described headers of the forwarding layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace mad2 {

/// Fill `dst` with a deterministic byte pattern derived from `seed`.
/// The pattern depends on both position and seed so transposition and
/// truncation bugs are caught by verify_pattern().
void fill_pattern(std::span<std::byte> dst, std::uint64_t seed);

/// True iff `src` holds exactly the pattern fill_pattern(seed) would write.
[[nodiscard]] bool verify_pattern(std::span<const std::byte> src,
                                  std::uint64_t seed);

/// 64-bit FNV-1a of a byte range.
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::byte> data);

/// Little-endian fixed-width encode/decode (the simulated wire format).
inline void store_u32(std::byte* dst, std::uint32_t v) {
  std::memcpy(dst, &v, sizeof v);
}
inline void store_u64(std::byte* dst, std::uint64_t v) {
  std::memcpy(dst, &v, sizeof v);
}
inline std::uint32_t load_u32(const std::byte* src) {
  std::uint32_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}
inline std::uint64_t load_u64(const std::byte* src) {
  std::uint64_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}

/// Convenience owning buffer with pattern construction for tests.
std::vector<std::byte> make_pattern_buffer(std::size_t size,
                                           std::uint64_t seed);

}  // namespace mad2
