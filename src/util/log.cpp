#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mad2 {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_log_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

struct EnvInit {
  EnvInit() {
    if (const char* env = std::getenv("MAD2_LOG")) {
      g_level.store(parse_log_level(env));
    }
  }
};
EnvInit g_env_init;

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogLevel parse_log_level(const char* name) {
  if (name == nullptr) return LogLevel::kWarn;
  if (std::strcmp(name, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(name, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(name, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(name, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(name, "error") == 0) return LogLevel::kError;
  if (std::strcmp(name, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

void log_message(LogLevel level, const char* fmt, ...) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[mad2 %s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace mad2
