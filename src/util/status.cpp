#include "util/status.hpp"

#include "util/debug_hook.hpp"

namespace mad2 {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kProtocolError:
      return "PROTOCOL_ERROR";
    case ErrorCode::kClosed:
      return "CLOSED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out(error_code_name(code_));
  out += ": ";
  out += message_;
  return out;
}

void check_failed(const char* file, int line, const char* expr,
                  const char* msg) {
  std::fprintf(stderr, "MAD2_CHECK failed at %s:%d: (%s) %s\n", file, line,
               expr, msg);
  invoke_failure_dump_hook(expr);
  std::abort();
}

}  // namespace mad2
