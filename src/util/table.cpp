#include "util/table.hpp"

#include <cstdio>

#include "util/status.hpp"

namespace mad2 {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  MAD2_CHECK(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c != 0 ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string format_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
    std::snprintf(buf, sizeof buf, "%llu MB",
                  static_cast<unsigned long long>(bytes / (1024 * 1024)));
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof buf, "%llu kB",
                  static_cast<unsigned long long>(bytes / 1024));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_us(double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", us);
  return buf;
}

std::string format_mbs(double mbs) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", mbs);
  return buf;
}

void print_perf_series(const std::string& title,
                       const std::vector<PerfSeries>& series) {
  std::printf("== %s ==\n", title.c_str());
  if (series.empty()) return;

  std::vector<std::string> headers{"size"};
  for (const PerfSeries& s : series) {
    headers.push_back(s.label + " lat(us)");
    headers.push_back(s.label + " bw(MB/s)");
  }
  Table table(std::move(headers));

  const auto& base = series.front().points;
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::vector<std::string> row{format_bytes(base[i].size_bytes)};
    for (const PerfSeries& s : series) {
      if (i < s.points.size()) {
        row.push_back(format_us(s.points[i].latency_us));
        row.push_back(format_mbs(s.points[i].bandwidth_mbs));
      } else {
        row.emplace_back("-");
        row.emplace_back("-");
      }
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n");
}

}  // namespace mad2
