// Plain-text table printing for the benchmark harnesses. Each bench binary
// prints the rows/series of one paper figure through this formatter so the
// output is uniform and easy to diff against EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace mad2 {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule, columns padded to the widest cell.
  [[nodiscard]] std::string to_string() const;

  /// Render to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers shared by the bench binaries.
std::string format_bytes(std::uint64_t bytes);     // "4 B", "8 kB", "1 MB"
std::string format_us(double us);                  // "3.90"
std::string format_mbs(double mbs);                // "82.1"

/// Print several PerfSeries as one table keyed by message size:
/// columns = size, then lat/bw per series. Sizes are taken from the first
/// series; the others must have been measured on the same sweep.
void print_perf_series(const std::string& title,
                       const std::vector<PerfSeries>& series);

}  // namespace mad2
