// Minimal leveled logger. Logging is off by default (kWarn) so benchmark
// output stays clean; tests and examples can raise verbosity through
// set_log_level() or the MAD2_LOG environment variable
// (trace|debug|info|warn|error).
#pragma once

#include <cstdarg>
#include <cstdio>

namespace mad2 {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "trace"/"debug"/... (case-insensitive); anything else -> kWarn.
LogLevel parse_log_level(const char* name);

/// printf-style logging; prepends the level tag. Thread-safe.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace mad2

#define MAD2_LOG(level, ...)                            \
  do {                                                  \
    if ((level) >= ::mad2::log_level()) {               \
      ::mad2::log_message((level), __VA_ARGS__);        \
    }                                                   \
  } while (0)

#define MAD2_TRACE(...) MAD2_LOG(::mad2::LogLevel::kTrace, __VA_ARGS__)
#define MAD2_DEBUG(...) MAD2_LOG(::mad2::LogLevel::kDebug, __VA_ARGS__)
#define MAD2_INFO(...) MAD2_LOG(::mad2::LogLevel::kInfo, __VA_ARGS__)
#define MAD2_WARN(...) MAD2_LOG(::mad2::LogLevel::kWarn, __VA_ARGS__)
#define MAD2_ERROR(...) MAD2_LOG(::mad2::LogLevel::kError, __VA_ARGS__)
