// MetricsRegistry: one snapshot surface for everything the stack counts.
//
// The registry owns named Histograms (latency distributions recorded by
// the Switch: "<channel>.pack_to_wire", ".wire_to_unpack", ".e2e") and
// named scalar gauges/counters. Sessions pour their TrafficStats /
// MemCounters / ReliabilityCounters into it via Session::export_metrics,
// so benches and CI read one flat JSON instead of stitching three counter
// families together.
//
// It also carries the e2e correlation state: the sending Switch pushes a
// begin-packing timestamp per (channel, src, dst) flow, the receiving
// Switch pops it at end-unpacking. Channels deliver messages in FIFO
// order per connection, so a deque per flow matches stamps exactly; the
// deque is capped so a one-sided flow (receiver never draining) cannot
// grow without bound.
//
// Like the TraceRecorder, a registry can be installed process-wide; the
// Session installs its own when the config enables tracing and none is
// ambient.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "obs/histogram.hpp"
#include "sim/time.hpp"

namespace mad2::obs {

class MetricsRegistry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime
  /// (callers cache the pointer and skip the map lookup on hot paths).
  [[nodiscard]] Histogram* histogram(const std::string& name);
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Scalar counters/gauges, set-or-overwrite semantics.
  void set_value(const std::string& name, std::int64_t value);
  void add_value(const std::string& name, std::int64_t delta);
  [[nodiscard]] std::int64_t value(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::int64_t>& values() const {
    return values_;
  }

  /// E2e stamp FIFO per flow key (we use "<channel>/<src>-<dst>").
  void push_stamp(const std::string& flow, sim::Time t);
  /// Pops the oldest stamp; returns false when the flow has none
  /// (stamp dropped by the cap, or sender-side tracing was off).
  [[nodiscard]] bool pop_stamp(const std::string& flow, sim::Time* t);

  void clear();

  /// Fold another recorder's registry into this one: identically-named
  /// histograms merge bucket-wise (Histogram::merge), values add, and the
  /// e2e stamp FIFOs are skipped — stamps pair a live sender with a live
  /// receiver and mean nothing across registries.
  void merge(const MetricsRegistry& other);

  /// Flat JSON: {"values": {...}, "histograms": {name: {count, p50_us,
  /// p95_us, p99_us, max_us, mean_us}}}. Keys sorted (std::map), so the
  /// output is deterministic.
  [[nodiscard]] std::string to_json() const;
  /// Write to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

  static constexpr std::size_t kMaxStampsPerFlow = 4096;

 private:
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::int64_t> values_;
  std::map<std::string, std::deque<sim::Time>> stamps_;
};

/// Process-wide registry, mirroring the recorder install rules.
void install_metrics(MetricsRegistry* registry);
void uninstall_metrics(MetricsRegistry* registry);
[[nodiscard]] MetricsRegistry* metrics();

}  // namespace mad2::obs
