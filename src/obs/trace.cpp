#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "util/debug_hook.hpp"

namespace mad2::obs {

namespace detail {
std::uint32_t g_trace_mask = 0;
TraceRecorder* g_recorder = nullptr;
}  // namespace detail

namespace {

ExecContext g_exec_context;
std::string g_dump_directory;      // overrides MAD2_TRACE_DUMP when set
bool g_dump_directory_set = false;
std::string g_last_dump_path;
std::uint64_t g_dump_counter = 0;

struct CategoryName {
  Category cat;
  const char* name;
};

constexpr CategoryName kCategoryNames[] = {
    {Category::kSwitch, "switch"}, {Category::kBmm, "bmm"},
    {Category::kTm, "tm"},         {Category::kNet, "net"},
    {Category::kFwd, "fwd"},       {Category::kRail, "rail"},
};

}  // namespace

std::string_view to_string(Category category) {
  for (const CategoryName& entry : kCategoryNames) {
    if (entry.cat == category) return entry.name;
  }
  return "?";
}

bool parse_categories(std::string_view text, std::uint32_t* mask) {
  *mask = 0;
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    std::string_view token = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    if (token.empty()) continue;
    if (token == "all" || token == "1") {
      *mask |= kAllCategories;
      continue;
    }
    bool known = false;
    for (const CategoryName& entry : kCategoryNames) {
      if (token == entry.name) {
        *mask |= static_cast<std::uint32_t>(entry.cat);
        known = true;
        break;
      }
    }
    if (!known) return false;
  }
  return true;
}

ExecContext& exec_context() { return g_exec_context; }

TraceRecorder::TraceRecorder(TraceConfig config)
    : config_(std::move(config)) {
  std::size_t slots =
      config_.ring_kb * std::size_t{1024} / sizeof(TraceEvent);
  if (slots == 0) slots = 1;
  ring_.resize(slots);
  tracks_[0] = "main";
}

TraceRecorder::~TraceRecorder() { uninstall_recorder(this); }

bool TraceRecorder::channel_enabled(const std::string& name) const {
  if (config_.channels.empty()) return true;
  for (const std::string& allowed : config_.channels) {
    if (allowed == name) return true;
  }
  return false;
}

void TraceRecorder::record(Category cat, const char* name,
                           const char* detail, sim::Time ts,
                           sim::Duration dur, std::uint64_t a0,
                           std::uint64_t a1) {
  const ExecContext& context = g_exec_context;
  TraceEvent& slot = ring_[recorded_ % ring_.size()];
  ++recorded_;
  slot.ts = ts >= 0 ? ts : (context.now != nullptr ? *context.now : 0);
  slot.dur = dur;
  slot.track = context.fiber;
  slot.name = name;
  slot.detail = detail;
  slot.a0 = a0;
  slot.a1 = a1;
  slot.cat = cat;
  // Intern the fiber name on first sight; the const char* dies with the
  // simulator, the exported trace must not.
  if (auto [it, inserted] = tracks_.try_emplace(context.fiber); inserted) {
    it->second = context.fiber_name != nullptr ? context.fiber_name : "?";
  }
}

std::size_t TraceRecorder::size() const {
  return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                  : ring_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> events;
  const std::size_t n = size();
  events.reserve(n);
  const std::uint64_t start = recorded_ - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    events.push_back(ring_[(start + i) % ring_.size()]);
  }
  return events;
}

void TraceRecorder::clear() {
  recorded_ = 0;
  tracks_.clear();
  tracks_[0] = "main";
}

void install_recorder(TraceRecorder* recorder) {
  detail::g_recorder = recorder;
  detail::g_trace_mask =
      recorder != nullptr ? recorder->config().categories : 0;
  set_failure_dump_hook(recorder != nullptr ? &dump_on_failure : nullptr);
}

void uninstall_recorder(TraceRecorder* recorder) {
  if (detail::g_recorder == recorder) install_recorder(nullptr);
}

TraceRecorder* recorder() { return detail::g_recorder; }

TraceRecorder* ensure_env_recorder() {
  const char* spec = std::getenv(kTraceEnvVar);
  if (spec == nullptr || *spec == '\0') return nullptr;
  if (detail::g_recorder != nullptr) return nullptr;

  TraceConfig config;
  if (!parse_categories(spec, &config.categories) ||
      config.categories == 0) {
    std::fprintf(stderr, "madtrace: ignoring unparsable %s='%s'\n",
                 kTraceEnvVar, spec);
    return nullptr;
  }
  if (const char* ring = std::getenv(kTraceRingEnvVar);
      ring != nullptr && *ring != '\0') {
    const long kb = std::strtol(ring, nullptr, 10);
    if (kb > 0) config.ring_kb = static_cast<std::size_t>(kb);
  }
  // Deliberately leaked: this recorder must outlive every Session so the
  // failure hook can still dump after the stack is torn down.
  static TraceRecorder* env_recorder = nullptr;
  static MetricsRegistry* env_metrics = nullptr;
  if (env_recorder == nullptr) {
    env_recorder = new TraceRecorder(std::move(config));
    env_metrics = new MetricsRegistry;
  }
  install_recorder(env_recorder);
  if (metrics() == nullptr) install_metrics(env_metrics);
  return env_recorder;
}

void set_dump_directory(std::string directory) {
  g_dump_directory = std::move(directory);
  g_dump_directory_set = !g_dump_directory.empty();
}

const std::string& last_dump_path() { return g_last_dump_path; }

void dump_on_failure(const char* reason) {
  TraceRecorder* rec = detail::g_recorder;
  if (rec == nullptr) return;

  constexpr std::size_t kTail = 64;
  const std::vector<TraceEvent> events = rec->snapshot();
  const std::size_t begin =
      events.size() > kTail ? events.size() - kTail : 0;
  std::fprintf(stderr,
               "madtrace: dumping last %zu of %llu events "
               "(%llu dropped to ring wrap; reason: %s)\n",
               events.size() - begin,
               static_cast<unsigned long long>(rec->recorded()),
               static_cast<unsigned long long>(rec->dropped_events()),
               reason != nullptr ? reason : "?");
  for (std::size_t i = begin; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    const auto track_it = rec->tracks().find(event.track);
    const char* track = track_it != rec->tracks().end()
                            ? track_it->second.c_str()
                            : "?";
    if (event.dur >= 0) {
      std::fprintf(stderr,
                   "  [%10.3fus] %-6s %-24s dur=%.3fus track=%s %s\n",
                   static_cast<double>(event.ts) / 1000.0,
                   std::string(to_string(event.cat)).c_str(), event.name,
                   static_cast<double>(event.dur) / 1000.0, track,
                   event.detail != nullptr ? event.detail : "");
    } else {
      std::fprintf(stderr, "  [%10.3fus] %-6s %-24s track=%s %s\n",
                   static_cast<double>(event.ts) / 1000.0,
                   std::string(to_string(event.cat)).c_str(), event.name,
                   track, event.detail != nullptr ? event.detail : "");
    }
  }

  const char* env_dir = std::getenv(kTraceDumpEnvVar);
  const std::string dir = g_dump_directory_set
                              ? g_dump_directory
                              : (env_dir != nullptr ? env_dir : "");
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string stem =
      dir + "/trace-dump-" + std::to_string(g_dump_counter++);
  const std::string trace_path = stem + ".json";
  if (write_chrome_trace(*rec, trace_path)) {
    g_last_dump_path = trace_path;
    std::fprintf(stderr, "madtrace: wrote %s\n", trace_path.c_str());
  }
  if (MetricsRegistry* registry = metrics(); registry != nullptr) {
    const std::string metrics_path = stem + "-metrics.json";
    if (registry->write_json(metrics_path)) {
      std::fprintf(stderr, "madtrace: wrote %s\n", metrics_path.c_str());
    }
  }
}

}  // namespace mad2::obs
