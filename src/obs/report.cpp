#include "obs/report.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace mad2::obs {

namespace {

// ----------------------------------------------------------- JSON parsing ---
// Minimal cursor parser for the MetricsRegistry::to_json contract, in the
// same style as parse_chrome_trace: no allocation-heavy DOM, just walk
// the two known maps.

struct Cursor {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\r' || *p == '\t')) {
      ++p;
    }
  }
  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
};

bool parse_string(Cursor* cursor, std::string* out) {
  if (!cursor->eat('"')) return false;
  out->clear();
  while (cursor->p < cursor->end && *cursor->p != '"') {
    char c = *cursor->p++;
    if (c == '\\' && cursor->p < cursor->end) {
      const char escaped = *cursor->p++;
      switch (escaped) {
        case 'n':
          c = '\n';
          break;
        case 't':
          c = '\t';
          break;
        case 'u':
          // Registry names are ASCII; decode the low byte only.
          if (cursor->end - cursor->p < 4) return false;
          c = static_cast<char>(
              std::strtol(std::string(cursor->p, 4).c_str(), nullptr, 16));
          cursor->p += 4;
          break;
        default:
          c = escaped;
      }
    }
    out->push_back(c);
  }
  return cursor->eat('"');
}

bool parse_number(Cursor* cursor, double* out) {
  cursor->skip_ws();
  char* after = nullptr;
  errno = 0;
  *out = std::strtod(cursor->p, &after);
  if (after == cursor->p || errno == ERANGE) return false;
  cursor->p = after;
  return true;
}

bool parse_histogram_summary(Cursor* cursor, HistogramSummary* out) {
  if (!cursor->eat('{')) return false;
  if (cursor->eat('}')) return true;
  do {
    std::string key;
    double value = 0.0;
    if (!parse_string(cursor, &key) || !cursor->eat(':') ||
        !parse_number(cursor, &value)) {
      return false;
    }
    if (key == "count") {
      out->count = static_cast<std::int64_t>(value);
    } else if (key == "mean_us") {
      out->mean_us = value;
    } else if (key == "p50_us") {
      out->p50_us = value;
    } else if (key == "p95_us") {
      out->p95_us = value;
    } else if (key == "p99_us") {
      out->p99_us = value;
    } else if (key == "max_us") {
      out->max_us = value;
    }  // unknown summary keys from newer writers are ignored
  } while (cursor->eat(','));
  return cursor->eat('}');
}

// --------------------------------------------------------- name dissection --

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Split "<channel>.<kind>.<flow>.<rest>" around ".<kind>." (kind is
/// "flow" or "hop"). Channel names contain no dots, so the first match
/// is the separator.
bool split_flow_name(std::string_view name, std::string_view kind,
                     std::string* channel, std::string* flow,
                     std::string* rest) {
  const std::string sep = "." + std::string(kind) + ".";
  const std::size_t at = name.find(sep);
  if (at == std::string_view::npos) return false;
  *channel = std::string(name.substr(0, at));
  std::string_view tail = name.substr(at + sep.size());
  const std::size_t dot = tail.find('.');
  if (dot == std::string_view::npos) return false;
  *flow = std::string(tail.substr(0, dot));
  *rest = std::string(tail.substr(dot + 1));
  return true;
}

struct FlowAccumulator {
  FlowRollup rollup;
  // Count-weighted mean accumulators (sum of count * mean).
  double e2e_p50_weight = 0.0;
  std::map<std::uint32_t, HopRollup> hops;
  std::map<std::uint32_t, double> queue_weight;
  std::map<std::uint32_t, double> wire_weight;
  std::map<std::uint32_t, std::int64_t> wire_samples;
};

void append_f(std::string* out, double v) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  out->append(buffer);
}

}  // namespace

bool parse_metrics_json(std::string_view text, ParsedMetrics* out) {
  Cursor cursor{text.data(), text.data() + text.size()};
  out->values.clear();
  out->histograms.clear();
  if (!cursor.eat('{')) return false;

  std::string section;
  if (!parse_string(&cursor, &section) || section != "values" ||
      !cursor.eat(':') || !cursor.eat('{')) {
    return false;
  }
  if (!cursor.eat('}')) {
    do {
      std::string name;
      double value = 0.0;
      if (!parse_string(&cursor, &name) || !cursor.eat(':') ||
          !parse_number(&cursor, &value)) {
        return false;
      }
      out->values[name] = static_cast<std::int64_t>(value);
    } while (cursor.eat(','));
    if (!cursor.eat('}')) return false;
  }

  if (!cursor.eat(',') || !parse_string(&cursor, &section) ||
      section != "histograms" || !cursor.eat(':') || !cursor.eat('{')) {
    return false;
  }
  if (!cursor.eat('}')) {
    do {
      std::string name;
      HistogramSummary summary;
      if (!parse_string(&cursor, &name) || !cursor.eat(':') ||
          !parse_histogram_summary(&cursor, &summary)) {
        return false;
      }
      out->histograms[name] = summary;
    } while (cursor.eat(','));
    if (!cursor.eat('}')) return false;
  }
  return cursor.eat('}');
}

ClusterReport cluster_report(const std::vector<ParsedMetrics>& inputs) {
  ClusterReport report;
  report.inputs = inputs.size();
  std::map<std::pair<std::string, std::string>, FlowAccumulator> flows;

  const auto flow_of = [&flows](const std::string& channel,
                                const std::string& flow) -> FlowAccumulator& {
    FlowAccumulator& acc = flows[{channel, flow}];
    acc.rollup.channel = channel;
    acc.rollup.flow = flow;
    return acc;
  };

  for (const ParsedMetrics& input : inputs) {
    for (const auto& [name, value] : input.values) {
      std::string channel, flow, field;
      if (split_flow_name(name, "flow", &channel, &flow, &field)) {
        FlowAccumulator& acc = flow_of(channel, flow);
        if (field == "packets") {
          acc.rollup.packets += value;
        } else if (field == "cwnd_x1000") {
          // Worst (smallest) surviving congestion window in the cluster.
          acc.rollup.cwnd_x1000 = acc.rollup.cwnd_x1000 < 0
                                      ? value
                                      : std::min(acc.rollup.cwnd_x1000, value);
        } else if (field == "srtt_us") {
          acc.rollup.srtt_us = std::max(acc.rollup.srtt_us, value);
        }
        continue;
      }
      if (ends_with(name, ".routing.replayed_packets")) {
        report.replayed_packets += value;
      } else if (ends_with(name, ".routing.dup_drops")) {
        report.dup_drops += value;
      } else if (ends_with(name, ".routing.discarded")) {
        report.discarded += value;
      } else if (ends_with(name, ".routing.gateway_kills")) {
        report.gateway_kills += value;
      } else if (starts_with(name, "rel.")) {
        if (ends_with(name, ".retransmits")) report.retransmits += value;
        else if (ends_with(name, ".dup_frames")) report.dup_frames += value;
        else if (ends_with(name, ".corrupt_frames")) {
          report.corrupt_frames += value;
        } else if (ends_with(name, ".give_ups")) {
          report.give_ups += value;
        }
      } else if (name == "trace.dropped_events") {
        report.dropped_trace_events += value;
      } else if (name == "slo.breaches") {
        report.slo_breaches += value;
      }
    }

    for (const auto& [name, summary] : input.histograms) {
      std::string channel, flow, rest;
      if (split_flow_name(name, "flow", &channel, &flow, &rest) &&
          rest == "e2e") {
        FlowAccumulator& acc = flow_of(channel, flow);
        acc.rollup.e2e_count += summary.count;
        acc.e2e_p50_weight +=
            static_cast<double>(summary.count) * summary.p50_us;
        acc.rollup.e2e_p99_us =
            std::max(acc.rollup.e2e_p99_us, summary.p99_us);
        continue;
      }
      if (!split_flow_name(name, "hop", &channel, &flow, &rest)) continue;
      const std::size_t dot = rest.find('.');
      if (dot == std::string::npos) continue;
      const std::uint32_t hop =
          static_cast<std::uint32_t>(std::strtoul(rest.c_str(), nullptr, 10));
      const std::string_view side = std::string_view(rest).substr(dot + 1);
      FlowAccumulator& acc = flow_of(channel, flow);
      HopRollup& hr = acc.hops[hop];
      hr.hop = hop;
      if (side == "queue") {
        hr.samples += summary.count;
        acc.queue_weight[hop] +=
            static_cast<double>(summary.count) * summary.mean_us;
        hr.queue_p99_us = std::max(hr.queue_p99_us, summary.p99_us);
      } else if (side == "wire") {
        acc.wire_samples[hop] += summary.count;
        acc.wire_weight[hop] +=
            static_cast<double>(summary.count) * summary.mean_us;
        hr.wire_p99_us = std::max(hr.wire_p99_us, summary.p99_us);
      }
    }
  }

  for (auto& [key, acc] : flows) {
    if (acc.rollup.e2e_count > 0) {
      acc.rollup.e2e_p50_us =
          acc.e2e_p50_weight / static_cast<double>(acc.rollup.e2e_count);
    }
    for (auto& [hop, hr] : acc.hops) {
      if (hr.samples > 0) {
        hr.queue_mean_us =
            acc.queue_weight[hop] / static_cast<double>(hr.samples);
      }
      if (const std::int64_t n = acc.wire_samples[hop]; n > 0) {
        hr.wire_mean_us = acc.wire_weight[hop] / static_cast<double>(n);
      }
      acc.rollup.hops.push_back(hr);
    }
    report.flows.push_back(std::move(acc.rollup));
  }
  return report;
}

ClusterReport cluster_report_from_files(const std::vector<std::string>& paths,
                                        std::vector<std::string>* errors) {
  std::vector<ParsedMetrics> parsed;
  for (const std::string& path : paths) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      if (errors != nullptr) errors->push_back(path + ": cannot open");
      continue;
    }
    std::string text;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(file);
    ParsedMetrics metrics;
    if (!parse_metrics_json(text, &metrics)) {
      if (errors != nullptr) errors->push_back(path + ": malformed metrics");
      continue;
    }
    parsed.push_back(std::move(metrics));
  }
  return cluster_report(parsed);
}

std::string ClusterReport::to_json() const {
  std::string out = "{\n  \"inputs\": " + std::to_string(inputs) +
                    ",\n  \"totals\": {";
  out.append("\n    \"retransmits\": " + std::to_string(retransmits));
  out.append(",\n    \"dup_frames\": " + std::to_string(dup_frames));
  out.append(",\n    \"corrupt_frames\": " + std::to_string(corrupt_frames));
  out.append(",\n    \"give_ups\": " + std::to_string(give_ups));
  out.append(",\n    \"replayed_packets\": " +
             std::to_string(replayed_packets));
  out.append(",\n    \"dup_drops\": " + std::to_string(dup_drops));
  out.append(",\n    \"discarded\": " + std::to_string(discarded));
  out.append(",\n    \"gateway_kills\": " + std::to_string(gateway_kills));
  out.append(",\n    \"dropped_trace_events\": " +
             std::to_string(dropped_trace_events));
  out.append(",\n    \"slo_breaches\": " + std::to_string(slo_breaches));
  out.append("\n  },\n  \"flows\": [");
  bool first = true;
  for (const FlowRollup& flow : flows) {
    out.append(first ? "\n    {" : ",\n    {");
    first = false;
    out.append("\"channel\": \"" + flow.channel + "\", \"flow\": \"" +
               flow.flow + "\", \"packets\": " +
               std::to_string(flow.packets));
    out.append(", \"cwnd_x1000\": " + std::to_string(flow.cwnd_x1000));
    out.append(", \"srtt_us\": " + std::to_string(flow.srtt_us));
    out.append(", \"e2e\": {\"count\": " + std::to_string(flow.e2e_count) +
               ", \"p50_us\": ");
    append_f(&out, flow.e2e_p50_us);
    out.append(", \"p99_us\": ");
    append_f(&out, flow.e2e_p99_us);
    out.append("}, \"hops\": [");
    bool first_hop = true;
    for (const HopRollup& hop : flow.hops) {
      out.append(first_hop ? "" : ", ");
      first_hop = false;
      out.append("{\"hop\": " + std::to_string(hop.hop) + ", \"samples\": " +
                 std::to_string(hop.samples) + ", \"queue_mean_us\": ");
      append_f(&out, hop.queue_mean_us);
      out.append(", \"queue_p99_us\": ");
      append_f(&out, hop.queue_p99_us);
      out.append(", \"wire_mean_us\": ");
      append_f(&out, hop.wire_mean_us);
      out.append(", \"wire_p99_us\": ");
      append_f(&out, hop.wire_p99_us);
      out.append("}");
    }
    out.append("]}");
  }
  out.append(first ? "]\n}\n" : "\n  ]\n}\n");
  return out;
}

std::string ClusterReport::to_text() const {
  std::string out = "madreport: " + std::to_string(inputs) +
                    " metric snapshot(s), " + std::to_string(flows.size()) +
                    " flow(s)\n";
  out.append("  totals: retransmits=" + std::to_string(retransmits) +
             " dup_frames=" + std::to_string(dup_frames) +
             " corrupt_frames=" + std::to_string(corrupt_frames) +
             " give_ups=" + std::to_string(give_ups) + "\n");
  out.append("          replayed=" + std::to_string(replayed_packets) +
             " dup_drops=" + std::to_string(dup_drops) + " discarded=" +
             std::to_string(discarded) + " gateway_kills=" +
             std::to_string(gateway_kills) + "\n");
  out.append("          dropped_trace_events=" +
             std::to_string(dropped_trace_events) + " slo_breaches=" +
             std::to_string(slo_breaches) + "\n");
  for (const FlowRollup& flow : flows) {
    out.append("  " + flow.channel + " " + flow.flow + ": packets=" +
               std::to_string(flow.packets));
    if (flow.cwnd_x1000 >= 0) {
      out.append(" cwnd=");
      append_f(&out, static_cast<double>(flow.cwnd_x1000) / 1000.0);
      out.append(" srtt_us=" + std::to_string(flow.srtt_us));
    }
    if (flow.e2e_count > 0) {
      out.append(" e2e_p50_us=");
      append_f(&out, flow.e2e_p50_us);
      out.append(" e2e_p99_us=");
      append_f(&out, flow.e2e_p99_us);
    }
    out.append("\n");
    for (const HopRollup& hop : flow.hops) {
      out.append("    hop " + std::to_string(hop.hop) + ": samples=" +
                 std::to_string(hop.samples) + " queue_mean_us=");
      append_f(&out, hop.queue_mean_us);
      out.append(" queue_p99_us=");
      append_f(&out, hop.queue_p99_us);
      out.append(" wire_mean_us=");
      append_f(&out, hop.wire_mean_us);
      out.append(" wire_p99_us=");
      append_f(&out, hop.wire_p99_us);
      out.append("\n");
    }
  }
  return out;
}

}  // namespace mad2::obs
