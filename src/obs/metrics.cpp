#include "obs/metrics.hpp"

#include <cstdio>

namespace mad2::obs {

namespace {

MetricsRegistry* g_metrics = nullptr;

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void append_us(std::string* out, std::int64_t ns) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f",
                static_cast<double>(ns) / 1000.0);
  out->append(buffer);
}

}  // namespace

Histogram* MetricsRegistry::histogram(const std::string& name) {
  return &histograms_[name];
}

void MetricsRegistry::set_value(const std::string& name, std::int64_t value) {
  values_[name] = value;
}

void MetricsRegistry::add_value(const std::string& name, std::int64_t delta) {
  values_[name] += delta;
}

std::int64_t MetricsRegistry::value(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

void MetricsRegistry::push_stamp(const std::string& flow, sim::Time t) {
  std::deque<sim::Time>& fifo = stamps_[flow];
  if (fifo.size() >= kMaxStampsPerFlow) fifo.pop_front();
  fifo.push_back(t);
}

bool MetricsRegistry::pop_stamp(const std::string& flow, sim::Time* t) {
  const auto it = stamps_.find(flow);
  if (it == stamps_.end() || it->second.empty()) return false;
  *t = it->second.front();
  it->second.pop_front();
  return true;
}

void MetricsRegistry::clear() {
  histograms_.clear();
  values_.clear();
  stamps_.clear();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].merge(histogram);
  }
  for (const auto& [name, value] : other.values_) {
    values_[name] += value;
  }
  // stamps_ deliberately not merged: an e2e stamp FIFO pairs a sending
  // Switch with its receiving peer inside one process; across registries
  // the pairing is gone and popping foreign stamps would fabricate delays.
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"values\": {";
  bool first = true;
  for (const auto& [name, value] : values_) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(&out, name);
    out.append(": ");
    out.append(std::to_string(value));
  }
  out.append(first ? "},\n" : "\n  },\n");
  out.append("  \"histograms\": {");
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out.append(first ? "\n    " : ",\n    ");
    first = false;
    append_json_string(&out, name);
    out.append(": {\"count\": ");
    out.append(std::to_string(histogram.count()));
    out.append(", \"mean_us\": ");
    append_us(&out, static_cast<std::int64_t>(histogram.mean()));
    out.append(", \"p50_us\": ");
    append_us(&out, histogram.p50());
    out.append(", \"p95_us\": ");
    append_us(&out, histogram.p95());
    out.append(", \"p99_us\": ");
    append_us(&out, histogram.p99());
    out.append(", \"max_us\": ");
    append_us(&out, histogram.max());
    out.append("}");
  }
  out.append(first ? "}\n}\n" : "\n  }\n}\n");
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = to_json();
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  std::fclose(file);
  return ok;
}

void install_metrics(MetricsRegistry* registry) { g_metrics = registry; }

void uninstall_metrics(MetricsRegistry* registry) {
  if (g_metrics == registry) g_metrics = nullptr;
}

MetricsRegistry* metrics() { return g_metrics; }

}  // namespace mad2::obs
