// SpanWeaver: cross-node causal span reassembly for distributed madtrace.
//
// With trace-context propagation on (`trace propagation` stanza), every
// virtual-channel packet carries a HopStamp — per-hop enqueue/dequeue/wire
// timestamps — and the delivering endpoint replays the stamp into the
// trace ring as per-hop `hop.queue` / `hop.wire` events (one pair per hop
// the packet crossed). Each event encodes its packet identity in the two
// numeric args:
//
//   a0 = flow id            ((src << 32) | dst)
//   a1 = hop arg            ((seq & 0xffffffff) << 32 |
//                            (node & 0xffffff) << 8 | hop_index)
//
// The weaver groups those events by (flow, seq) back into one causally
// linked cross-node span per packet: hop 0 is the sender, the last hop the
// receiver, and for every hop the queue-residency time (enqueue ->
// dequeue) is split from the wire time (wire -> next hop's enqueue). That
// split is the per-hop congestion attribution a single-node timeline
// cannot show — a slow gateway surfaces as queue residency at exactly that
// hop.
//
// Output surfaces:
//   - weave():         structured WeavedSpans for tests and tools;
//   - export_metrics(): per-(src,dst,hop) queue/wire histograms;
//   - chrome_json():   a Perfetto-loadable timeline with one synthetic
//                      track per node and "s"/"t"/"f" flow arrows linking
//                      consecutive hops of each packet.
//
// Like the rest of obs, nothing here touches the simulator: the weaver
// consumes ring snapshots after the fact (one recorder, or one per
// simulated "process" merged via add_events).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mad2::obs {

/// Event names the propagation path records and the weaver consumes.
inline constexpr const char* kHopQueueEvent = "hop.queue";
inline constexpr const char* kHopWireEvent = "hop.wire";

/// Flow identity packing (same scheme the congestion layer hashes).
[[nodiscard]] constexpr std::uint64_t flow_id(std::uint32_t src,
                                              std::uint32_t dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}
[[nodiscard]] constexpr std::uint32_t flow_src(std::uint64_t id) {
  return static_cast<std::uint32_t>(id >> 32);
}
[[nodiscard]] constexpr std::uint32_t flow_dst(std::uint64_t id) {
  return static_cast<std::uint32_t>(id & 0xffffffffu);
}

/// Hop-arg packing for the event's a1: sequence (truncated to 32 bits —
/// grouping only needs locality, not the full counter), the hop's node id
/// (24 bits, enough for the 1024-node scale tier), and the hop index.
[[nodiscard]] constexpr std::uint64_t hop_arg(std::uint64_t seq,
                                              std::uint32_t node,
                                              std::uint32_t hop) {
  return ((seq & 0xffffffffull) << 32) |
         ((static_cast<std::uint64_t>(node) & 0xffffffull) << 8) |
         (hop & 0xffull);
}
struct HopArg {
  std::uint32_t seq = 0;
  std::uint32_t node = 0;
  std::uint32_t hop = 0;
};
[[nodiscard]] constexpr HopArg decode_hop_arg(std::uint64_t a1) {
  return HopArg{static_cast<std::uint32_t>(a1 >> 32),
                static_cast<std::uint32_t>((a1 >> 8) & 0xffffffu),
                static_cast<std::uint32_t>(a1 & 0xffu)};
}

/// One hop of a reassembled packet journey.
struct HopSpan {
  std::uint32_t node = 0;  ///< node that held the packet at this hop
  std::uint32_t hop = 0;   ///< position along the route; 0 = sender
  sim::Time enqueue = 0;   ///< entered this hop's queue
  sim::Time dequeue = 0;   ///< left the queue (scheduler picked it)
  sim::Time wire = 0;      ///< handed to the wire toward the next hop
  /// Queue residency (dequeue - enqueue): sender pacing/window wait at
  /// hop 0, forwarding-queue wait at gateways, 0 at the delivery hop.
  sim::Duration queue_ns = 0;
  /// Wire + landing time to the next hop's enqueue; 0 on the last hop.
  sim::Duration wire_ns = 0;
};

/// One packet's cross-node causal span: every hop it crossed, in order.
struct WeavedSpan {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t seq = 0;
  std::vector<HopSpan> hops;

  [[nodiscard]] sim::Time start() const {
    return hops.empty() ? 0 : hops.front().enqueue;
  }
  [[nodiscard]] sim::Time end() const;
  [[nodiscard]] sim::Duration total_ns() const { return end() - start(); }
};

class SpanWeaver {
 public:
  /// Ingest a recorder's ring (snapshot taken here). May be called once
  /// per per-"process" recorder; events merge into one weave.
  void add(const TraceRecorder& recorder);
  /// Ingest an already-captured snapshot (offline weaving).
  void add_events(std::span<const TraceEvent> events);

  /// Reassemble: group hop events by (flow, seq), order hops along the
  /// route. Packets whose events were partially lost to ring wrap weave
  /// into partial spans (the dropped-events counter says how much trust
  /// to put in them). Deterministic order: by (src, dst, seq).
  [[nodiscard]] std::vector<WeavedSpan> weave() const;

  /// Per-(src,dst,hop) latency attribution histograms:
  ///   <prefix>.hop.<src>-<dst>.<hop>.queue   (queue residency, ns)
  ///   <prefix>.hop.<src>-<dst>.<hop>.wire    (wire + landing, ns)
  static void export_metrics(const std::vector<WeavedSpan>& spans,
                             const std::string& prefix,
                             MetricsRegistry* registry);

  /// Chrome/Perfetto JSON: per-node tracks carrying the hop spans plus
  /// "s"/"t"/"f" flow events linking hop k to hop k+1 of each packet.
  [[nodiscard]] static std::string chrome_json(
      const std::vector<WeavedSpan>& spans);
  static bool write_chrome_json(const std::vector<WeavedSpan>& spans,
                                const std::string& path);

 private:
  std::vector<TraceEvent> events_;
};

/// Weave the installed recorder's ring and write the cross-node timeline
/// to `path` (the SLO watchdog pairs this with dump_on_failure so a
/// breach ships both the raw ring and the weaved spans). Returns false
/// without an installed recorder or on I/O failure.
bool write_weaved_dump(const std::string& path);

}  // namespace mad2::obs
