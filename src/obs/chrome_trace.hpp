// Chrome trace-event JSON exporter (and a small parser for round-trip
// tests). The output loads directly in Perfetto / chrome://tracing: one
// process, one "thread" (track) per fiber — so every lane fiber, gateway
// pump and application fiber gets its own swim-lane. Spans become "X"
// complete events, instants become "i" events; track names ship as "M"
// thread_name metadata. Timestamps are virtual-time microseconds
// (Chrome's native unit), durations likewise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/status.hpp"

namespace mad2::obs {

/// Serialize the recorder's current contents. Events are emitted sorted
/// by timestamp (Perfetto requires non-decreasing ts per track).
[[nodiscard]] std::string chrome_trace_json(const TraceRecorder& recorder);

/// chrome_trace_json() to a file; returns false on I/O failure.
bool write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path);

/// Parsed-back view of one trace event, for exporter round-trip tests.
struct ParsedEvent {
  std::string phase;  // "X", "i" or "M"
  std::string name;
  std::string category;
  std::uint64_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;      // X events only
  std::string thread_name;  // M events only
};

/// Minimal parser for the exact JSON shape chrome_trace_json emits
/// (object with a "traceEvents" array). Not a general JSON parser.
[[nodiscard]] Result<std::vector<ParsedEvent>> parse_chrome_trace(
    const std::string& json);

}  // namespace mad2::obs
