#include "obs/span_weaver.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <tuple>

namespace mad2::obs {

namespace {

void append_us(std::string* out, std::int64_t ns) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f",
                static_cast<double>(ns) / 1000.0);
  out->append(buffer);
}

[[nodiscard]] bool is_hop_event(const TraceEvent& event) {
  if (event.name == nullptr) return false;
  return std::strcmp(event.name, kHopQueueEvent) == 0 ||
         std::strcmp(event.name, kHopWireEvent) == 0;
}

}  // namespace

sim::Time WeavedSpan::end() const {
  if (hops.empty()) return 0;
  const HopSpan& last = hops.back();
  // The delivery hop records its landing time as `enqueue` and carries no
  // queue/wire segments; intermediate tails (partial spans) end at the
  // last timestamp we actually saw.
  return std::max({last.enqueue, last.dequeue, last.wire + last.wire_ns});
}

void SpanWeaver::add(const TraceRecorder& recorder) {
  add_events(recorder.snapshot());
}

void SpanWeaver::add_events(std::span<const TraceEvent> events) {
  for (const TraceEvent& event : events) {
    if (is_hop_event(event)) events_.push_back(event);
  }
}

std::vector<WeavedSpan> SpanWeaver::weave() const {
  // Key: (flow_id, seq). std::map gives the deterministic (src, dst, seq)
  // output order for free — flow_id is src-major.
  std::map<std::pair<std::uint64_t, std::uint32_t>,
           std::map<std::uint32_t, HopSpan>>
      packets;
  for (const TraceEvent& event : events_) {
    const HopArg arg = decode_hop_arg(event.a1);
    HopSpan& hop = packets[{event.a0, arg.seq}][arg.hop];
    hop.node = arg.node;
    hop.hop = arg.hop;
    const sim::Duration dur = event.dur >= 0 ? event.dur : 0;
    if (std::strcmp(event.name, kHopQueueEvent) == 0) {
      hop.enqueue = event.ts;
      hop.dequeue = event.ts + dur;
      hop.queue_ns = dur;
    } else {
      hop.wire = event.ts;
      hop.wire_ns = dur;
    }
  }

  std::vector<WeavedSpan> spans;
  spans.reserve(packets.size());
  for (const auto& [key, hops] : packets) {
    WeavedSpan span;
    span.src = flow_src(key.first);
    span.dst = flow_dst(key.first);
    span.seq = key.second;
    span.hops.reserve(hops.size());
    for (const auto& [index, hop] : hops) span.hops.push_back(hop);
    spans.push_back(std::move(span));
  }
  return spans;
}

void SpanWeaver::export_metrics(const std::vector<WeavedSpan>& spans,
                                const std::string& prefix,
                                MetricsRegistry* registry) {
  if (registry == nullptr) return;
  for (const WeavedSpan& span : spans) {
    const std::string flow = prefix + ".hop." + std::to_string(span.src) +
                             "-" + std::to_string(span.dst) + ".";
    for (const HopSpan& hop : span.hops) {
      const std::string stem = flow + std::to_string(hop.hop);
      registry->histogram(stem + ".queue")->record(hop.queue_ns);
      // The delivery hop has no outgoing wire segment; recording its
      // structural zero would drown the real wire distribution.
      if (&hop != &span.hops.back()) {
        registry->histogram(stem + ".wire")->record(hop.wire_ns);
      }
    }
  }
}

std::string SpanWeaver::chrome_json(const std::vector<WeavedSpan>& spans) {
  // Same envelope as chrome_trace_json, but tracks are synthetic per-node
  // timelines (tid = node + 1; the real exporter's fiber tids start at 0)
  // and consecutive hops of one packet are linked with Perfetto flow
  // events ("s" start / "t" step / "f" finish sharing one id).
  std::map<std::uint32_t, bool> nodes;
  for (const WeavedSpan& span : spans) {
    for (const HopSpan& hop : span.hops) nodes[hop.node] = true;
  }

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&out, &first](const std::string& row) {
    if (!first) out.append(",\n");
    first = false;
    out.append(" ");
    out.append(row);
  };

  for (const auto& [node, unused] : nodes) {
    (void)unused;
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(node + 1) + ",\"args\":{\"name\":\"node" +
         std::to_string(node) + "\"}}");
  }

  std::uint64_t flow_event_id = 0;
  for (const WeavedSpan& span : spans) {
    const std::string args = ",\"args\":{\"src\":" +
                             std::to_string(span.src) + ",\"dst\":" +
                             std::to_string(span.dst) + ",\"seq\":" +
                             std::to_string(span.seq) + "}";
    for (std::size_t i = 0; i < span.hops.size(); ++i) {
      const HopSpan& hop = span.hops[i];
      const std::string tid = std::to_string(hop.node + 1);
      {
        std::string row = "{\"name\":\"hop.queue\",\"cat\":\"fwd\","
                          "\"ph\":\"X\",\"ts\":";
        append_us(&row, hop.enqueue);
        row.append(",\"dur\":");
        append_us(&row, hop.queue_ns);
        row.append(",\"pid\":1,\"tid\":" + tid + args + "}");
        emit(row);
      }
      if (i + 1 < span.hops.size()) {
        std::string row = "{\"name\":\"hop.wire\",\"cat\":\"fwd\","
                          "\"ph\":\"X\",\"ts\":";
        append_us(&row, hop.wire);
        row.append(",\"dur\":");
        append_us(&row, hop.wire_ns);
        row.append(",\"pid\":1,\"tid\":" + tid + args + "}");
        emit(row);
      }
      // Flow arrow from this hop to the next: "s" leaves as the packet
      // hits the wire, "t"/"f" bind to the next hop's queue span.
      if (i + 1 < span.hops.size()) {
        const std::uint64_t id =
            i == 0 ? ++flow_event_id : flow_event_id;
        const HopSpan& next = span.hops[i + 1];
        const char* out_phase = i == 0 ? "s" : "t";
        std::string row = "{\"name\":\"packet\",\"cat\":\"fwd\",\"ph\":\"";
        row.append(out_phase);
        row.append("\",\"id\":" + std::to_string(id) + ",\"ts\":");
        append_us(&row, hop.wire);
        row.append(",\"pid\":1,\"tid\":" + tid + "}");
        emit(row);
        if (i + 2 >= span.hops.size()) {
          std::string fin = "{\"name\":\"packet\",\"cat\":\"fwd\","
                            "\"ph\":\"f\",\"bp\":\"e\",\"id\":" +
                            std::to_string(id) + ",\"ts\":";
          append_us(&fin, next.enqueue);
          fin.append(",\"pid\":1,\"tid\":" + std::to_string(next.node + 1) +
                     "}");
          emit(fin);
        }
      }
    }
  }

  out.append("\n]}\n");
  return out;
}

bool SpanWeaver::write_chrome_json(const std::vector<WeavedSpan>& spans,
                                   const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = chrome_json(spans);
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  std::fclose(file);
  return ok;
}

bool write_weaved_dump(const std::string& path) {
  const TraceRecorder* rec = recorder();
  if (rec == nullptr) return false;
  SpanWeaver weaver;
  weaver.add(*rec);
  const bool ok = SpanWeaver::write_chrome_json(weaver.weave(), path);
  if (ok) std::fprintf(stderr, "madtrace: wrote %s\n", path.c_str());
  return ok;
}

}  // namespace mad2::obs
