// madtrace: per-block lifecycle tracing for the whole stack.
//
// A TraceRecorder is a fixed-capacity ring of POD trace events stamped
// with virtual time (sim::Time) and the id of the fiber that produced
// them. Instrumentation sites use the MAD2_TRACE_SPAN / MAD2_TRACE_EVENT
// macros below: when no recorder is installed (or the event's category is
// masked off) a site costs one global load and a branch; when enabled it
// costs one ring write. Nothing here ever charges virtual time, so a
// traced run is bit-identical to an untraced one — tracing observes the
// simulation, it never perturbs it.
//
// The clock is ambient rather than owned: the Simulator publishes a
// pointer to its virtual clock and the identity of the running fiber
// through exec_context() while run() is active (single-OS-thread
// contract), so one recorder can observe any number of simulators —
// benches install a process-wide recorder once and every Session built
// afterwards traces into it.
//
// Enablement, in precedence order:
//   1. MAD2_TRACE=<categories> env (ensure_env_recorder(); process-wide,
//      never uninstalled, so failure dumps work after sessions die);
//   2. a `trace` stanza in the session config (recorder owned by that
//      Session, uninstalled with it);
//   3. a recorder the test/bench installed by hand via install_recorder().
//
// On any MAD2_CHECK failure or madcheck invariant failure, the installed
// recorder auto-dumps its tail to stderr — and, when MAD2_TRACE_DUMP
// names a directory, full Chrome-trace + metrics JSON files land there so
// failing runs ship with a timeline (see dump_on_failure).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mad2::obs {

/// Event categories, one bit each (MAD2_TRACE=fwd,switch style masks).
enum class Category : std::uint32_t {
  kSwitch = 1u << 0,  // TM selection, BMM routing, flush reasons
  kBmm = 1u << 1,     // aggregation / copy decisions
  kTm = 1u << 2,      // post/complete, credit waits inside TMs
  kNet = 1u << 3,     // driver + reliable-shim work (retransmits, acks)
  kFwd = 1u << 4,     // forwarding pipeline (per-packet hop timing)
  kRail = 1u << 5,    // rail scheduler (per-segment post/land, resubmits)
};

inline constexpr std::uint32_t kAllCategories = 0x3fu;

[[nodiscard]] std::string_view to_string(Category category);

/// Parse "fwd,switch" / "all" into a category mask. Unknown names fail.
[[nodiscard]] bool parse_categories(std::string_view text,
                                    std::uint32_t* mask);

/// Who is executing right now: the running simulator's clock and fiber.
/// Published by Simulator::run()/resume(); zeroed outside a run. The
/// single-OS-thread contract makes one process-global context correct.
struct ExecContext {
  const sim::Time* now = nullptr;  // null outside Simulator::run()
  std::uint64_t fiber = 0;         // 0 = scheduler/callback context
  const char* fiber_name = "main";
};

[[nodiscard]] ExecContext& exec_context();

/// One ring slot. `name`/`detail` must be string literals (or otherwise
/// outlive the recorder): the ring never copies or frees them.
struct TraceEvent {
  sim::Time ts = 0;
  sim::Duration dur = -1;  // -1: instant event; >= 0: completed span
  std::uint64_t track = 0;
  const char* name = nullptr;
  const char* detail = nullptr;  // optional static string
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  Category cat = Category::kSwitch;
};

/// One SLO watchdog rule (`slo=<channel>:<p99_us>` on the trace stanza):
/// after Session::run() the watchdog compares the channel's e2e latency
/// histograms against the threshold and auto-dumps the weaved cross-node
/// trace on breach (see Session::check_slo_rules).
struct SloRule {
  std::string channel;
  std::int64_t p99_us = 0;
};

/// Recorder configuration (the session config `trace` stanza maps here).
struct TraceConfig {
  std::uint32_t categories = kAllCategories;
  std::size_t ring_kb = 256;
  /// Channel names the Switch-level instrumentation is restricted to;
  /// empty means every channel. Other categories ignore this filter.
  std::vector<std::string> channels;
  /// Trace-context propagation: virtual channels stamp every packet with
  /// a per-hop HopStamp (an extra EXPRESS block, like the congestion
  /// send-stamp) and rail lanes emit segment-boundary events. Off keeps
  /// the wire byte stream bit-identical to an untraced session.
  bool propagation = false;
  /// SLO watchdog thresholds, checked after the session runs.
  std::vector<SloRule> slo;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceConfig config = {});
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  [[nodiscard]] const TraceConfig& config() const { return config_; }
  [[nodiscard]] bool channel_enabled(const std::string& name) const;

  /// One ring write. Reads timestamp/track from exec_context() when
  /// `ts` is negative (the common case; spans pass their own start).
  void record(Category cat, const char* name, const char* detail,
              sim::Time ts, sim::Duration dur, std::uint64_t a0,
              std::uint64_t a1);

  /// Events in recording order, oldest first (at most capacity()).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Total record() calls; recorded() - size() events were overwritten.
  [[nodiscard]] std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring wrap (flight-recorder truncation). Exported as
  /// the `trace.dropped_events` metric so a wrapped ring is never silent.
  [[nodiscard]] std::uint64_t dropped_events() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Interned track names (fiber names copied at first sight, so they
  /// survive the simulator that owned the fibers).
  [[nodiscard]] const std::map<std::uint64_t, std::string>& tracks() const {
    return tracks_;
  }

 private:
  TraceConfig config_;
  std::vector<TraceEvent> ring_;
  std::uint64_t recorded_ = 0;
  std::map<std::uint64_t, std::string> tracks_;
};

// --- Ambient installation ---------------------------------------------------

/// Install `recorder` as the process-wide trace sink and raise the fast
/// category mask. Also arms the failure-dump hook (util/debug_hook.hpp).
void install_recorder(TraceRecorder* recorder);
/// Remove `recorder` if it is the installed one (no-op otherwise).
void uninstall_recorder(TraceRecorder* recorder);
[[nodiscard]] TraceRecorder* recorder();

/// Build and install a process-lifetime recorder from the MAD2_TRACE /
/// MAD2_TRACE_RING_KB environment (idempotent; returns the recorder, or
/// nullptr when MAD2_TRACE is unset or an ambient recorder already
/// exists). Never uninstalled: auto-dumps keep working after the Session
/// that triggered creation has died.
TraceRecorder* ensure_env_recorder();

/// Name of the enablement environment variable ("fwd,switch" or "all").
inline constexpr const char* kTraceEnvVar = "MAD2_TRACE";
/// Optional ring-size override (KiB) for the env-created recorder.
inline constexpr const char* kTraceRingEnvVar = "MAD2_TRACE_RING_KB";
/// Directory auto-dumps write trace/metrics JSON files into.
inline constexpr const char* kTraceDumpEnvVar = "MAD2_TRACE_DUMP";

// --- Hot-path check ---------------------------------------------------------

namespace detail {
/// Installed recorder's category mask; 0 when no recorder is installed.
extern std::uint32_t g_trace_mask;
extern TraceRecorder* g_recorder;
}  // namespace detail

[[nodiscard]] inline bool trace_enabled(Category cat) {
  return (detail::g_trace_mask & static_cast<std::uint32_t>(cat)) != 0;
}

/// Instant event on the current track at the current virtual time.
inline void trace_event(Category cat, const char* name,
                        const char* detail = nullptr, std::uint64_t a0 = 0,
                        std::uint64_t a1 = 0) {
  detail::g_recorder->record(cat, name, detail, -1, -1, a0, a1);
}

/// RAII span: stamps its start on construction, writes one complete event
/// (start + duration) on destruction. Construct only behind a
/// trace_enabled() check — the macro below does — so the disabled cost
/// stays one branch.
class TraceSpan {
 public:
  TraceSpan(Category cat, const char* name, const char* detail = nullptr)
      : cat_(cat), name_(name), detail_(detail) {
    if (trace_enabled(cat_)) {
      const ExecContext& context = exec_context();
      start_ = context.now != nullptr ? *context.now : 0;
      active_ = true;
    }
  }
  ~TraceSpan() {
    // The recorder can be uninstalled while a span is open (session
    // teardown); drop the event rather than write through null.
    if (!active_ || detail::g_recorder == nullptr) return;
    const ExecContext& context = exec_context();
    const sim::Time end = context.now != nullptr ? *context.now : start_;
    detail::g_recorder->record(cat_, name_, detail_, start_, end - start_,
                               a0_, a1_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach numeric arguments (exported as args.a0/args.a1).
  void args(std::uint64_t a0, std::uint64_t a1 = 0) {
    a0_ = a0;
    a1_ = a1;
  }
  [[nodiscard]] bool active() const { return active_; }

 private:
  Category cat_;
  const char* name_;
  const char* detail_;
  sim::Time start_ = 0;
  std::uint64_t a0_ = 0;
  std::uint64_t a1_ = 0;
  bool active_ = false;
};

// --- Failure dumps ----------------------------------------------------------

/// Dump the installed recorder's tail (last ~64 events) to stderr and,
/// when MAD2_TRACE_DUMP (or set_dump_directory) names a directory, write
/// full Chrome-trace and metrics JSON files there. No-op without an
/// installed recorder. Wired into MAD2_CHECK aborts, madcheck invariant
/// failures and reliable-shim give-ups via the util failure hook.
void dump_on_failure(const char* reason);

/// Test hook: override the dump directory (empty string restores the
/// MAD2_TRACE_DUMP environment lookup).
void set_dump_directory(std::string directory);
/// Path of the most recent Chrome-trace dump file ("" if none yet).
[[nodiscard]] const std::string& last_dump_path();

}  // namespace mad2::obs

// --- Instrumentation macros -------------------------------------------------
//
// MAD2_OBS_NO_TRACE compiles every site to nothing (cmake -DMAD2_NO_TRACE=ON);
// the default build keeps them at one global load + branch when disabled.

#ifdef MAD2_OBS_NO_TRACE

#define MAD2_TRACE_EVENT(cat, ...) \
  do {                             \
  } while (0)
#define MAD2_TRACE_SPAN(var, cat, name, ...) \
  ::mad2::obs::TraceSpan var {               \
    (cat), (name)                            \
  }

namespace mad2::obs::detail {
// Keeps the span variable a real (inactive) TraceSpan so .args() compiles.
}  // namespace mad2::obs::detail

#else

/// Instant event: MAD2_TRACE_EVENT(cat, "name"[, "detail"[, a0[, a1]]]).
/// Arguments are not evaluated when the category is disabled.
#define MAD2_TRACE_EVENT(cat, ...)                       \
  do {                                                   \
    if (::mad2::obs::trace_enabled(cat)) {               \
      ::mad2::obs::trace_event((cat), __VA_ARGS__);      \
    }                                                    \
  } while (0)

/// Named span object: MAD2_TRACE_SPAN(span, cat, "name"[, "detail"]);
/// call span.args(a0, a1) before scope exit to attach arguments.
#define MAD2_TRACE_SPAN(var, cat, ...) \
  ::mad2::obs::TraceSpan var {         \
    (cat), __VA_ARGS__                 \
  }

#endif  // MAD2_OBS_NO_TRACE
