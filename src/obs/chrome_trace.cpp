#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

namespace mad2::obs {

namespace {

void append_escaped(std::string* out, const char* s) {
  out->push_back('"');
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void append_us(std::string* out, sim::Time ns) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f",
                static_cast<double>(ns) / 1000.0);
  out->append(buffer);
}

}  // namespace

std::string chrome_trace_json(const TraceRecorder& recorder) {
  std::vector<TraceEvent> events = recorder.snapshot();
  // Spans are recorded at completion; re-sort by start so Perfetto (and
  // our round-trip invariants) see non-decreasing timestamps per track.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [track, name] : recorder.tracks()) {
    if (!first) out.append(",\n");
    first = false;
    out.append(
        " {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
    out.append(std::to_string(track));
    out.append(",\"args\":{\"name\":");
    append_escaped(&out, name.c_str());
    out.append("}}");
  }
  for (const TraceEvent& event : events) {
    if (!first) out.append(",\n");
    first = false;
    out.append(" {\"name\":");
    append_escaped(&out, event.name != nullptr ? event.name : "?");
    out.append(",\"cat\":");
    append_escaped(&out, std::string(to_string(event.cat)).c_str());
    if (event.dur >= 0) {
      out.append(",\"ph\":\"X\",\"ts\":");
      append_us(&out, event.ts);
      out.append(",\"dur\":");
      append_us(&out, event.dur);
    } else {
      out.append(",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
      append_us(&out, event.ts);
    }
    out.append(",\"pid\":1,\"tid\":");
    out.append(std::to_string(event.track));
    out.append(",\"args\":{\"a0\":");
    out.append(std::to_string(event.a0));
    out.append(",\"a1\":");
    out.append(std::to_string(event.a1));
    if (event.detail != nullptr) {
      out.append(",\"detail\":");
      append_escaped(&out, event.detail);
    }
    out.append("}}");
  }
  out.append("\n]}\n");
  return out;
}

bool write_chrome_trace(const TraceRecorder& recorder,
                        const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string json = chrome_trace_json(recorder);
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  std::fclose(file);
  return ok;
}

namespace {

// Cursor over the serialized text; parse_* helpers consume whitespace
// first and return false (without a precise position) on malformed input
// — good enough for round-trip tests over our own exporter output.
struct Cursor {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r'))
      ++p;
  }
  bool eat(char c) {
    skip_ws();
    if (p == end || *p != c) return false;
    ++p;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return p != end && *p == c;
  }
};

bool parse_string(Cursor* cursor, std::string* out) {
  if (!cursor->eat('"')) return false;
  out->clear();
  while (cursor->p != cursor->end && *cursor->p != '"') {
    char c = *cursor->p++;
    if (c == '\\' && cursor->p != cursor->end) c = *cursor->p++;
    out->push_back(c);
  }
  return cursor->eat('"');
}

bool parse_number(Cursor* cursor, double* out) {
  cursor->skip_ws();
  char* parse_end = nullptr;
  *out = std::strtod(cursor->p, &parse_end);
  if (parse_end == cursor->p) return false;
  cursor->p = parse_end;
  return true;
}

// Parses a {"key": value, ...} object where values are strings, numbers,
// or one nested object (flattened as "parent.key").
bool parse_object(Cursor* cursor, const std::string& prefix,
                  std::map<std::string, std::string>* strings,
                  std::map<std::string, double>* numbers) {
  if (!cursor->eat('{')) return false;
  if (cursor->eat('}')) return true;
  while (true) {
    std::string key;
    if (!parse_string(cursor, &key)) return false;
    if (!cursor->eat(':')) return false;
    const std::string full = prefix.empty() ? key : prefix + "." + key;
    if (cursor->peek('"')) {
      std::string value;
      if (!parse_string(cursor, &value)) return false;
      (*strings)[full] = std::move(value);
    } else if (cursor->peek('{')) {
      if (!parse_object(cursor, full, strings, numbers)) return false;
    } else {
      double value = 0.0;
      if (!parse_number(cursor, &value)) return false;
      (*numbers)[full] = value;
    }
    if (cursor->eat(',')) continue;
    return cursor->eat('}');
  }
}

}  // namespace

Result<std::vector<ParsedEvent>> parse_chrome_trace(const std::string& json) {
  Cursor cursor{json.data(), json.data() + json.size()};
  if (!cursor.eat('{')) return invalid_argument("trace: expected '{'");
  std::string key;
  if (!parse_string(&cursor, &key) || key != "traceEvents" ||
      !cursor.eat(':') || !cursor.eat('[')) {
    return invalid_argument("trace: expected \"traceEvents\":[");
  }

  std::vector<ParsedEvent> events;
  if (!cursor.eat(']')) {
    while (true) {
      std::map<std::string, std::string> strings;
      std::map<std::string, double> numbers;
      if (!parse_object(&cursor, "", &strings, &numbers)) {
        return invalid_argument("trace: malformed event object near index " +
                                std::to_string(events.size()));
      }
      ParsedEvent event;
      event.phase = strings["ph"];
      event.name = strings["name"];
      event.category = strings["cat"];
      event.thread_name = strings["args.name"];
      event.tid = static_cast<std::uint64_t>(numbers["tid"]);
      event.ts_us = numbers["ts"];
      event.dur_us = numbers["dur"];
      if (event.phase.empty() || event.name.empty()) {
        return invalid_argument("trace: event missing ph/name");
      }
      events.push_back(std::move(event));
      if (cursor.eat(',')) continue;
      if (cursor.eat(']')) break;
      return invalid_argument("trace: expected ',' or ']' in traceEvents");
    }
  }
  if (!cursor.eat('}')) return invalid_argument("trace: expected final '}'");
  return events;
}

}  // namespace mad2::obs
