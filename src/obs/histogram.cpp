#include "obs/histogram.hpp"

#include <bit>
#include <cstdio>

namespace mad2::obs {

namespace {

// Bucket 0 holds value 0; bucket i >= 1 holds (2^(i-1), 2^i].
std::size_t bucket_index(std::int64_t value) {
  if (value <= 0) return 0;
  return std::bit_width(static_cast<std::uint64_t>(value));
}

}  // namespace

std::int64_t Histogram::bucket_limit(std::size_t index) {
  if (index == 0) return 0;
  if (index >= 63) return INT64_MAX;
  return static_cast<std::int64_t>(1) << index;
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  ++buckets_[bucket_index(value)];
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile among count_ samples (1-based, ceil).
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_) + 0.999999);
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;

  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (seen + buckets_[i] < rank) {
      seen += buckets_[i];
      continue;
    }
    // Interpolate within (lower, upper] by the rank's position among the
    // bucket's samples; clamp to the recorded extremes so a one-bucket
    // histogram reports its true min/max rather than bucket edges.
    const std::int64_t lower = i == 0 ? 0 : bucket_limit(i - 1);
    const std::int64_t upper = bucket_limit(i);
    const double within = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets_[i]);
    double value = static_cast<double>(lower) +
                   within * static_cast<double>(upper - lower);
    if (value < static_cast<double>(min())) value = static_cast<double>(min());
    if (value > static_cast<double>(max_)) value = static_cast<double>(max_);
    return static_cast<std::int64_t>(value);
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::reset() { *this = Histogram{}; }

std::string Histogram::to_string() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "count=%llu p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_),
                static_cast<double>(p50()) / 1000.0,
                static_cast<double>(p95()) / 1000.0,
                static_cast<double>(p99()) / 1000.0,
                static_cast<double>(max_) / 1000.0);
  return buffer;
}

}  // namespace mad2::obs
