// madreport: cluster-health aggregation over per-node metrics snapshots.
//
// Every Session (or simulated "process group" in the scale tests) can
// write a MetricsRegistry JSON. madreport parses any number of those
// files and folds them into one consolidated cluster report: per-flow
// rollups (packets, cwnd, srtt, per-hop queue/wire latency from the
// SpanWeaver histograms, e2e percentiles), plus cluster-wide loss and
// retransmission totals from the reliable-shim and resilient-routing
// counters. The `tools/madreport` binary is a thin CLI over this; the
// scale tier calls it in-process so a 256-node run ships one JSON.
//
// The parser accepts exactly the MetricsRegistry::to_json shape (it is
// the producer's contract, not a general JSON library) and is, like the
// rest of obs, independent of the simulator.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mad2::obs {

/// Summary row of one histogram as serialized by MetricsRegistry.
struct HistogramSummary {
  std::int64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// One parsed metrics file: {"values": {...}, "histograms": {...}}.
struct ParsedMetrics {
  std::map<std::string, std::int64_t> values;
  std::map<std::string, HistogramSummary> histograms;
};

/// Parse a MetricsRegistry::to_json document. Returns false (and leaves
/// `out` unspecified) on malformed input.
[[nodiscard]] bool parse_metrics_json(std::string_view text,
                                      ParsedMetrics* out);

/// Per-hop latency attribution for one flow (from the SpanWeaver's
/// `<channel>.hop.<src>-<dst>.<k>.{queue,wire}` histograms), rolled up
/// across inputs: counts add, means are count-weighted, p99 takes the
/// worst input (a quantile of merged summaries is not recoverable, the
/// max is the honest upper bound).
struct HopRollup {
  std::uint32_t hop = 0;
  std::int64_t samples = 0;
  double queue_mean_us = 0.0;
  double queue_p99_us = 0.0;
  double wire_mean_us = 0.0;
  double wire_p99_us = 0.0;
};

/// One "<channel>.flow.<src>-<dst>" rollup across all inputs.
struct FlowRollup {
  std::string channel;
  std::string flow;  // "<src>-<dst>"
  std::int64_t packets = 0;
  /// Congestion window (packets, x1000 fixed point on the wire); the
  /// worst (smallest) surviving window across inputs, -1 when no input
  /// ran with congestion control.
  std::int64_t cwnd_x1000 = -1;
  std::int64_t srtt_us = 0;  // worst (largest) smoothed RTT seen
  std::int64_t e2e_count = 0;
  double e2e_p50_us = 0.0;
  double e2e_p99_us = 0.0;  // worst input's p99
  std::vector<HopRollup> hops;
};

/// The consolidated cluster view madreport emits.
struct ClusterReport {
  std::size_t inputs = 0;
  std::vector<FlowRollup> flows;
  // Cluster-wide reliability/loss totals (summed counters).
  std::int64_t retransmits = 0;      // rel.*.retransmits
  std::int64_t dup_frames = 0;       // rel.*.dup_frames
  std::int64_t corrupt_frames = 0;   // rel.*.corrupt_frames
  std::int64_t give_ups = 0;         // rel.*.give_ups
  std::int64_t replayed_packets = 0; // *.routing.replayed_packets
  std::int64_t dup_drops = 0;        // *.routing.dup_drops
  std::int64_t discarded = 0;        // *.routing.discarded
  std::int64_t gateway_kills = 0;    // *.routing.gateway_kills
  std::int64_t dropped_trace_events = 0;  // trace.dropped_events
  std::int64_t slo_breaches = 0;          // slo.breaches

  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_text() const;
};

/// Fold parsed per-node metrics into one report.
[[nodiscard]] ClusterReport cluster_report(
    const std::vector<ParsedMetrics>& inputs);

/// Convenience for the CLI and tests: read `paths`, parse each, report.
/// Unreadable or malformed files append a line to `*errors` (when given)
/// and are skipped.
[[nodiscard]] ClusterReport cluster_report_from_files(
    const std::vector<std::string>& paths,
    std::vector<std::string>* errors = nullptr);

}  // namespace mad2::obs
