// Log-bucketed latency histogram. Values are non-negative int64 (we use
// nanoseconds of virtual time); buckets are powers of two, so 63 buckets
// cover the full range with ~2x relative error on quantiles, which is
// plenty for p50/p95/p99 reporting. Recording is O(1) with no allocation
// after construction — cheap enough to live on message hot paths.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace mad2::obs {

class Histogram {
 public:
  void record(std::int64_t value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] std::int64_t sum() const { return sum_; }
  [[nodiscard]] double mean() const;

  /// Quantile in [0, 1], linearly interpolated inside the hit bucket.
  /// Returns 0 when empty.
  [[nodiscard]] std::int64_t percentile(double q) const;
  [[nodiscard]] std::int64_t p50() const { return percentile(0.50); }
  [[nodiscard]] std::int64_t p95() const { return percentile(0.95); }
  [[nodiscard]] std::int64_t p99() const { return percentile(0.99); }

  void merge(const Histogram& other);
  void reset();

  /// "count=12 p50=1.2us p95=3.4us p99=3.9us max=4.1us" (times in us).
  [[nodiscard]] std::string to_string() const;

  static constexpr std::size_t kBuckets = 64;
  /// Upper bound (inclusive) of bucket `index`.
  [[nodiscard]] static std::int64_t bucket_limit(std::size_t index);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t sum_ = 0;
};

}  // namespace mad2::obs
