#include "mpi/ch_mad.hpp"
#include "util/log.hpp"

#include <cstring>

namespace mad2::mpi {

ChMadWorld::ChMadWorld(mad::Session& session, std::string channel_name)
    : session_(&session), channel_name_(std::move(channel_name)) {
  const auto& nodes = session_->channel(channel_name_).nodes();
  // Ranks are positions in the channel's node list; the common case is a
  // channel over all nodes, making rank == node id.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    MAD2_CHECK(nodes[i] == i,
               "ChMadWorld expects a channel over nodes 0..n-1");
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    comms_.emplace_back(
        new ChMadComm(this, static_cast<std::uint32_t>(i)));
  }
}

ChMadWorld::~ChMadWorld() = default;

ChMadComm::ChMadComm(ChMadWorld* world, std::uint32_t rank)
    : world_(world), rank_(rank) {
  progress_wq_ =
      std::make_unique<sim::WaitQueue>(&world_->session().simulator());
  world_->session().simulator().spawn_daemon(
      "mpi.pump." + std::to_string(rank), [this] { pump_loop(); });
}

int ChMadComm::size() const { return static_cast<int>(world_->size()); }

sim::Simulator& ChMadComm::simulator() {
  return world_->session().simulator();
}

void ChMadComm::send(std::span<const std::byte> data, int dst, int tag) {
  MAD2_CHECK(dst >= 0 && dst < size(), "send to invalid rank");
  auto& node = world_->session().node(rank_);
  node.charge_cpu(world_->per_op_cost);
  mad::ChannelEndpoint& ep =
      world_->session().endpoint(world_->channel_name(), rank_);
  mad::Connection& conn =
      ep.begin_packing(static_cast<std::uint32_t>(dst));
  const Envelope envelope{tag, static_cast<std::uint32_t>(data.size())};
  mad::mad_pack_value(conn, envelope, mad::send_CHEAPER,
                      mad::receive_EXPRESS);
  conn.pack(data, mad::send_CHEAPER, mad::receive_CHEAPER);
  conn.end_packing();
}

RecvStatus ChMadComm::recv(std::span<std::byte> out, int src, int tag) {
  auto& node = world_->session().node(rank_);
  node.charge_cpu(world_->per_op_cost);

  // The pump may be mid-message when we arrive (blocked inside an unpack),
  // in which case it has already decided "unexpected" for a message that
  // matches us. So: re-scan the unexpected queue on every wakeup, not just
  // on entry, and prefer it over a pump match — unexpected messages are
  // older than anything the pump matched into `out` afterwards.
  PostedRecv posted{src, tag, out, false, {}};
  bool registered = false;
  for (;;) {
    auto it = unexpected_.begin();
    for (; it != unexpected_.end(); ++it) {
      if (matches(src, tag, it->src, it->tag)) break;
    }
    if (it != unexpected_.end()) {
      MAD2_CHECK(it->data.size() <= out.size(),
                 "receive buffer too small for matched message");
      if (registered) {
        if (posted.done) {
          // Rare double-delivery window: the pump also matched a (newer)
          // message into `out`. Re-queue that one as unexpected, then
          // deliver the older message in its place.
          Unexpected requeued;
          requeued.src = posted.status.source;
          requeued.tag = posted.status.tag;
          requeued.data.assign(out.begin(),
                               out.begin() + posted.status.bytes);
          unexpected_.push_back(std::move(requeued));
          // Iterator may be invalidated by push_back: re-find the match.
          it = unexpected_.begin();
          while (!matches(src, tag, it->src, it->tag)) ++it;
        } else {
          posted_.remove(&posted);
        }
      }
      node.charge_memcpy(it->data.size());
      std::memcpy(out.data(), it->data.data(), it->data.size());
      RecvStatus status{it->src, it->tag, it->data.size()};
      unexpected_.erase(it);
      return status;
    }
    if (registered && posted.done) return posted.status;
    if (!registered) {
      // Nothing can run between the scan above and this registration
      // (fibers are cooperative), so no message is lost in between.
      posted_.push_back(&posted);
      registered = true;
    }
    progress_wq_->wait();
  }
}

RecvStatus ChMadComm::probe() {
  for (;;) {
    if (!unexpected_.empty()) {
      const Unexpected& head = unexpected_.front();
      return RecvStatus{head.src, head.tag, head.data.size()};
    }
    progress_wq_->wait();
  }
}

void ChMadComm::pump_loop() {
  mad::ChannelEndpoint& ep =
      world_->session().endpoint(world_->channel_name(), rank_);
  for (;;) {
    MAD2_DEBUG("pump %u: waiting", rank_);
    mad::Connection& conn = ep.begin_unpacking();
    MAD2_DEBUG("pump %u: msg from %u", rank_, conn.remote());
    Envelope envelope{};
    mad::mad_unpack_value(conn, envelope, mad::send_CHEAPER,
                          mad::receive_EXPRESS);
    const int src = static_cast<int>(conn.remote());

    PostedRecv* match = nullptr;
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (matches((*it)->src, (*it)->tag, src, envelope.tag)) {
        match = *it;
        posted_.erase(it);
        break;
      }
    }

    if (match != nullptr) {
      MAD2_CHECK(envelope.size <= match->out.size(),
                 "receive buffer too small for matched message");
      conn.unpack(match->out.subspan(0, envelope.size), mad::send_CHEAPER,
                  mad::receive_CHEAPER);
      conn.end_unpacking();
      match->status = RecvStatus{src, envelope.tag, envelope.size};
      match->done = true;
      MAD2_DEBUG("pump %u: matched src=%d tag=%d", rank_, src, envelope.tag);
    } else {
      Unexpected unexpected;
      unexpected.src = src;
      unexpected.tag = envelope.tag;
      unexpected.data.resize(envelope.size);
      conn.unpack(unexpected.data, mad::send_CHEAPER, mad::receive_CHEAPER);
      conn.end_unpacking();
      unexpected_.push_back(std::move(unexpected));
      MAD2_DEBUG("pump %u: unexpected src=%d tag=%d", rank_, src,
                 envelope.tag);
    }
    progress_wq_->notify_all();
  }
}

}  // namespace mad2::mpi
