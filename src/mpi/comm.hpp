// Mini-MPI interface for the Figure 6 experiments (paper Section 5.3.1).
//
// Just enough of MPI to run the evaluation and examples: blocking and
// nonblocking point-to-point with (source, tag) matching incl. wildcards,
// and the common collectives built on top. Three implementations exist:
//   - ChMadComm      — MPICH/Madeleine II style, over a mad channel
//   - ScampiLikeComm — ScaMPI-style baseline, directly on SISCI
//   - ScimpichLikeComm — SCI-MPICH-style baseline, directly on SISCI
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "sim/sync.hpp"

namespace mad2::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Completion info for a receive.
struct RecvStatus {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

/// Handle for a nonblocking operation.
class Request {
 public:
  Request() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool done() const { return state_ && state_->done; }
  [[nodiscard]] const RecvStatus& status() const { return state_->status; }

  struct State {
    explicit State(sim::Simulator* simulator) : wq(simulator) {}
    bool done = false;
    RecvStatus status;
    sim::WaitQueue wq;
  };
  std::shared_ptr<State> state_;
};

/// One rank's communicator endpoint. Collectives are implemented in the
/// base class over the virtual point-to-point operations.
class Comm {
 public:
  virtual ~Comm() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int size() const = 0;
  [[nodiscard]] virtual sim::Simulator& simulator() = 0;

  /// Blocking standard-mode send.
  virtual void send(std::span<const std::byte> data, int dst, int tag) = 0;

  /// Blocking receive with matching; src/tag may be wildcards.
  virtual RecvStatus recv(std::span<std::byte> out, int src, int tag) = 0;

  /// Block until some message is available, without consuming it; returns
  /// its envelope (MPI_Probe with wildcards). Needed by layers that demux
  /// on arrival, e.g. Madeleine's MPI protocol module.
  virtual RecvStatus probe() = 0;

  /// Nonblocking variants (completed by an internal fiber).
  Request isend(std::span<const std::byte> data, int dst, int tag);
  Request irecv(std::span<std::byte> out, int src, int tag);
  void wait(Request& request);

  /// Combined send+receive (deadlock-free pairwise exchange).
  RecvStatus sendrecv(std::span<const std::byte> senddata, int dst,
                      int sendtag, std::span<std::byte> recvdata, int src,
                      int recvtag);

  // --- collectives (tags >= kCollectiveTagBase are reserved) -------------
  static constexpr int kCollectiveTagBase = 1 << 20;
  void barrier();
  void bcast(std::span<std::byte> data, int root);
  /// Elementwise double sum into `data` at the root.
  void reduce_sum(std::span<double> data, int root);
  void allreduce_sum(std::span<double> data);
  /// Root gathers size()*chunk bytes; `out` may be empty on non-roots.
  void gather(std::span<const std::byte> chunk, std::span<std::byte> out,
              int root);
};

}  // namespace mad2::mpi
