// MPICH/Madeleine II ("ch_mad", paper Section 5.3.1): the mini-MPI
// implemented over a Madeleine channel.
//
// Wire format per MPI message: an 8-byte envelope {tag, size} packed
// receive_EXPRESS, then the payload packed receive_CHEAPER — so the
// payload rides Madeleine's best transfer method (zero-copy rendezvous on
// BIP, dual-buffered PIO on SISCI). A per-rank progress pump performs the
// (source, tag) matching: matched messages unpack straight into the posted
// user buffer; unmatched ones are drained into an unexpected-message queue
// (the only case that pays an extra copy).
#pragma once

#include <deque>
#include <list>
#include <memory>
#include <vector>

#include "mad/madeleine.hpp"
#include "mpi/comm.hpp"

namespace mad2::mpi {

class ChMadWorld;

class ChMadComm final : public Comm {
 public:
  [[nodiscard]] int rank() const override { return static_cast<int>(rank_); }
  [[nodiscard]] int size() const override;
  [[nodiscard]] sim::Simulator& simulator() override;

  void send(std::span<const std::byte> data, int dst, int tag) override;
  RecvStatus recv(std::span<std::byte> out, int src, int tag) override;
  /// Blocks until a message sits in the unexpected queue and returns its
  /// envelope. (Messages consumed by concurrently posted receives are not
  /// observable here — adequate for demultiplexing layers, which never
  /// mix probe and posted receives.)
  RecvStatus probe() override;

 private:
  friend class ChMadWorld;
  ChMadComm(ChMadWorld* world, std::uint32_t rank);

  struct Envelope {
    std::int32_t tag;
    std::uint32_t size;
  };
  struct PostedRecv {
    int src;
    int tag;
    std::span<std::byte> out;
    bool done = false;
    RecvStatus status;
  };
  struct Unexpected {
    int src;
    int tag;
    std::vector<std::byte> data;
  };

  void pump_loop();
  [[nodiscard]] bool matches(int want_src, int want_tag, int src, int tag) {
    return (want_src == kAnySource || want_src == src) &&
           (want_tag == kAnyTag || want_tag == tag);
  }

  ChMadWorld* world_;
  std::uint32_t rank_;
  std::list<PostedRecv*> posted_;
  std::deque<Unexpected> unexpected_;
  std::unique_ptr<sim::WaitQueue> progress_wq_;
};

/// The MPI "world": one communicator endpoint per session node, over one
/// dedicated Madeleine channel (the pump is its only receiver).
class ChMadWorld {
 public:
  ChMadWorld(mad::Session& session, std::string channel_name);
  ~ChMadWorld();

  [[nodiscard]] ChMadComm& comm(std::uint32_t rank) { return *comms_[rank]; }
  [[nodiscard]] mad::Session& session() { return *session_; }
  [[nodiscard]] const std::string& channel_name() const {
    return channel_name_;
  }
  [[nodiscard]] std::size_t size() const { return comms_.size(); }

  /// CPU cost of the MPI layer per operation (matching, request
  /// bookkeeping, ADI dispatch) — the source of ch_mad's latency overhead
  /// over raw Madeleine in Figure 6.
  sim::Duration per_op_cost = sim::from_us(2.5);

 private:
  mad::Session* session_;
  std::string channel_name_;
  std::vector<std::unique_ptr<ChMadComm>> comms_;
};

}  // namespace mad2::mpi
