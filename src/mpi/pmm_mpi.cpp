#include "mpi/pmm_mpi.hpp"

#include <map>

namespace mad2::mpi {

namespace {

class MpiPmm;

/// The single dynamic TM: one MPI message per buffer.
class MpiTm final : public mad::Tm {
 public:
  explicit MpiTm(MpiPmm* pmm) : pmm_(pmm) {}
  [[nodiscard]] std::string_view name() const override { return "mpi"; }
  // Grouping brings nothing: the substrate sends per call anyway.
  [[nodiscard]] bool supports_groups() const override { return false; }

  void send_buffer(mad::Connection& connection,
                   std::span<const std::byte> data) override;
  void receive_buffer(mad::Connection& connection,
                      std::span<std::byte> out) override;

 private:
  MpiPmm* pmm_;
};

class MpiPmm final : public mad::Pmm {
 public:
  MpiPmm(mad::ChannelEndpoint& endpoint,
         std::function<Comm&(std::uint32_t)> comm_of)
      : endpoint_(endpoint), comm_of_(std::move(comm_of)), tm_(this) {
    std::size_t channels_on_network = 0;
    for (const auto& def : endpoint.session().config().channels) {
      if (def.network == endpoint.channel().network().def.name) {
        ++channels_on_network;
      }
    }
    MAD2_CHECK(channels_on_network == 1,
               "mad-over-MPI networks host exactly one channel "
               "(the substrate only guarantees in-order matching)");
    const auto& nodes = endpoint.channel().nodes();
    for (std::size_t rank = 0; rank < nodes.size(); ++rank) {
      rank_of_node_[nodes[rank]] = static_cast<int>(rank);
      node_of_rank_[static_cast<int>(rank)] = nodes[rank];
    }
  }

  [[nodiscard]] std::string_view name() const override { return "mpi"; }

  struct State : ConnState {
    int remote_rank = 0;
  };

  std::unique_ptr<ConnState> make_conn_state(std::uint32_t remote) override {
    auto state = std::make_unique<State>();
    state->remote_rank = rank_of_node_.at(remote);
    return state;
  }

  mad::Tm& select_tm(std::size_t, mad::SendMode, mad::ReceiveMode) override {
    return tm_;
  }

  std::uint32_t wait_incoming() override {
    const RecvStatus status = comm().probe();
    return node_of_rank_.at(status.source);
  }

  /// Resolved lazily: the provider may need the fully built session (the
  /// substrate MPI world is typically created on first use).
  [[nodiscard]] Comm& comm() {
    if (comm_ == nullptr) comm_ = &comm_of_(endpoint_.local());
    return *comm_;
  }

 private:
  mad::ChannelEndpoint& endpoint_;
  std::function<Comm&(std::uint32_t)> comm_of_;
  Comm* comm_ = nullptr;
  MpiTm tm_;
  std::map<std::uint32_t, int> rank_of_node_;
  std::map<int, std::uint32_t> node_of_rank_;
};

void MpiTm::send_buffer(mad::Connection& connection,
                        std::span<const std::byte> data) {
  auto& state = connection.state<MpiPmm::State>();
  pmm_->comm().send(data, state.remote_rank, /*tag=*/0);
}

void MpiTm::receive_buffer(mad::Connection& connection,
                           std::span<std::byte> out) {
  auto& state = connection.state<MpiPmm::State>();
  const RecvStatus status =
      pmm_->comm().recv(out, state.remote_rank, /*tag=*/0);
  MAD2_CHECK(status.bytes == out.size(),
             "mad-over-MPI: block size mismatch (asymmetric sequences)");
}

}  // namespace

mad::NetworkDef make_mad_over_mpi_network(
    std::string name, std::vector<std::uint32_t> nodes,
    std::function<Comm&(std::uint32_t node)> comm_of) {
  mad::NetworkDef def;
  def.name = std::move(name);
  def.kind = mad::NetworkKind::kCustom;
  def.nodes = std::move(nodes);
  def.custom_pmm = [comm_of = std::move(comm_of)](
                       mad::ChannelEndpoint& endpoint) {
    return std::unique_ptr<mad::Pmm>(new MpiPmm(endpoint, comm_of));
  };
  return def;
}

}  // namespace mad2::mpi
