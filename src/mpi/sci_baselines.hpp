// Baseline MPI implementations over SISCI for the Figure 6 comparison.
//
// Both use the classic eager-copy scheme of SCI MPIs of the era: per
// directed pair, a ring of fixed-size buffers in a segment on the
// receiver; the sender PIO-writes payload then header, the receiver
// memcpy-drains and returns a consumed counter. They differ in ring
// geometry and software overhead:
//
//   ScampiLikeComm  — "ScaMPI"-style: lean fast path, 2 x 16 kB ring
//                     (some overlap). Best small-message latency, but the
//                     copy pipeline plateaus well below Madeleine's
//                     dual-buffered zero-copy path.
//   ScimpichLikeComm — "SCI-MPICH"-style: 1 x 8 kB ring (fully
//                     serialized chunks) and heavier per-chunk protocol.
//
// Limitations (adequate for the benchmarks/tests): per-source messages
// match strictly in order; a tag mismatch on a non-wildcard receive is a
// protocol error rather than an unexpected-queue case.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mpi/comm.hpp"
#include "net/sisci.hpp"

namespace mad2::mpi {

struct SciBaselineParams {
  std::string name;
  std::uint32_t buffer_bytes = 16 * 1024;
  std::uint32_t buffers = 2;
  sim::Duration per_message_cost = sim::from_us(0.8);
  sim::Duration per_chunk_cost = sim::from_us(1.0);

  static SciBaselineParams scampi_like();
  static SciBaselineParams scimpich_like();
};

class SciBaselineWorld;

class SciBaselineComm final : public Comm {
 public:
  [[nodiscard]] int rank() const override { return static_cast<int>(rank_); }
  [[nodiscard]] int size() const override;
  [[nodiscard]] sim::Simulator& simulator() override;

  void send(std::span<const std::byte> data, int dst, int tag) override;
  RecvStatus recv(std::span<std::byte> out, int src, int tag) override;
  RecvStatus probe() override;

 private:
  friend class SciBaselineWorld;
  SciBaselineComm(SciBaselineWorld* world, std::uint32_t rank)
      : world_(world), rank_(rank) {}

  SciBaselineWorld* world_;
  std::uint32_t rank_;
};

/// All per-pair rings plus one Comm per rank.
class SciBaselineWorld {
 public:
  SciBaselineWorld(net::SciNetwork& network, SciBaselineParams params);
  ~SciBaselineWorld();

  [[nodiscard]] SciBaselineComm& comm(std::uint32_t rank) {
    return *comms_[rank];
  }
  [[nodiscard]] const SciBaselineParams& params() const { return params_; }

 private:
  friend class SciBaselineComm;
  static constexpr std::uint32_t kHeaderBytes = 16;  // seq, len, tag, total

  struct Pair {  // directed src -> dst
    net::SegmentId ring = 0;          // on dst
    net::SegmentId feedback = 0;      // on src
    net::RemoteSegment ring_remote;   // mapped by src
    net::RemoteSegment feedback_remote;  // mapped by dst
    std::uint64_t sent = 0;      // sender-side unit counter
    std::uint64_t received = 0;  // receiver-side unit counter
  };

  [[nodiscard]] Pair& pair(std::uint32_t src, std::uint32_t dst);
  [[nodiscard]] std::uint64_t slot_offset(std::uint64_t index) const {
    return index * (kHeaderBytes + params_.buffer_bytes);
  }
  [[nodiscard]] bool unit_ready(std::uint32_t src, std::uint32_t dst);

  net::SciNetwork* network_;
  SciBaselineParams params_;
  std::map<std::uint64_t, Pair> pairs_;  // key: src << 32 | dst
  std::vector<std::unique_ptr<SciBaselineComm>> comms_;
};

}  // namespace mad2::mpi
