// Madeleine II on top of MPI ("Madeleine II has also been ported, quite
// straightforwardly, on top of MPI" — paper Section 5.3; the conclusion
// lists "common MPI implementations" among the supported interfaces).
//
// One transmission module, purely dynamic: every packed block becomes one
// MPI message on the channel's tag; begin_unpacking demultiplexes with
// MPI_Probe. The simplicity is the point — and so is the cost: the MPI
// layer's own matching and copies sit under every block, which is exactly
// why the paper built native protocol modules instead.
//
// Wire format caveat: the substrate Comm may only guarantee in-order
// matching (the SCI baselines do), so a custom network using this PMM
// hosts exactly one Madeleine channel.
#pragma once

#include <functional>

#include "mad/pmm.hpp"
#include "mad/session.hpp"
#include "mpi/comm.hpp"

namespace mad2::mpi {

/// Builds a NetworkDef of kind kCustom whose channels run Madeleine over
/// the given MPI world. `comm_of` maps a *global node id* to that node's
/// communicator endpoint; ranks are the node's index in `nodes`.
mad::NetworkDef make_mad_over_mpi_network(
    std::string name, std::vector<std::uint32_t> nodes,
    std::function<Comm&(std::uint32_t node)> comm_of);

}  // namespace mad2::mpi
