#include "mpi/comm.hpp"

#include <cstring>
#include <vector>

#include "sim/simulator.hpp"
#include "util/status.hpp"

namespace mad2::mpi {

Request Comm::isend(std::span<const std::byte> data, int dst, int tag) {
  Request request;
  request.state_ = std::make_shared<Request::State>(&simulator());
  auto state = request.state_;
  simulator().spawn("mpi.isend", [this, data, dst, tag, state] {
    send(data, dst, tag);
    state->done = true;
    state->wq.notify_all();
  });
  return request;
}

Request Comm::irecv(std::span<std::byte> out, int src, int tag) {
  Request request;
  request.state_ = std::make_shared<Request::State>(&simulator());
  auto state = request.state_;
  simulator().spawn("mpi.irecv", [this, out, src, tag, state] {
    state->status = recv(out, src, tag);
    state->done = true;
    state->wq.notify_all();
  });
  return request;
}

void Comm::wait(Request& request) {
  MAD2_CHECK(request.valid(), "wait on an empty request");
  while (!request.state_->done) request.state_->wq.wait();
}

RecvStatus Comm::sendrecv(std::span<const std::byte> senddata, int dst,
                          int sendtag, std::span<std::byte> recvdata,
                          int src, int recvtag) {
  Request rx = irecv(recvdata, src, recvtag);
  send(senddata, dst, sendtag);
  wait(rx);
  return rx.status();
}

void Comm::barrier() {
  // Dissemination barrier: log2(n) rounds of pairwise exchanges.
  const int n = size();
  const int me = rank();
  std::byte token{1};
  std::byte sink{0};
  for (int shift = 1; shift < n; shift <<= 1) {
    const int to = (me + shift) % n;
    const int from = (me - shift % n + n) % n;
    sendrecv(std::span(&token, 1), to, kCollectiveTagBase + shift,
             std::span(&sink, 1), from, kCollectiveTagBase + shift);
  }
}

void Comm::bcast(std::span<std::byte> data, int root) {
  // Binomial tree rooted at `root`, in rank space rotated so root == 0.
  const int n = size();
  const int vrank = (rank() - root + n) % n;
  const int tag = kCollectiveTagBase + 100;
  auto real = [&](int v) { return (v + root) % n; };

  // Receive phase: a non-root receives once from its tree parent.
  int mask = 1;
  while (mask < n) {
    if ((vrank & mask) != 0) {
      recv(data, real(vrank - mask), tag);
      break;
    }
    mask <<= 1;
  }
  // Send phase: forward to each child below the bit where we received.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      send(data, real(vrank + mask), tag);
    }
    mask >>= 1;
  }
}

void Comm::reduce_sum(std::span<double> data, int root) {
  // Gather-to-root linear reduction (adequate for the examples/benches).
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 200;
  if (me == root) {
    std::vector<double> incoming(data.size());
    for (int peer = 0; peer < n; ++peer) {
      if (peer == root) continue;
      recv(std::as_writable_bytes(std::span(incoming)), peer, tag);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += incoming[i];
    }
  } else {
    send(std::as_bytes(data), root, tag);
  }
}

void Comm::allreduce_sum(std::span<double> data) {
  reduce_sum(data, 0);
  bcast(std::as_writable_bytes(data), 0);
}

void Comm::gather(std::span<const std::byte> chunk, std::span<std::byte> out,
                  int root) {
  const int n = size();
  const int me = rank();
  const int tag = kCollectiveTagBase + 300;
  if (me == root) {
    MAD2_CHECK(out.size() >= chunk.size() * static_cast<std::size_t>(n),
               "gather output too small");
    std::memcpy(out.data() + chunk.size() * static_cast<std::size_t>(me),
                chunk.data(), chunk.size());
    for (int peer = 0; peer < n; ++peer) {
      if (peer == root) continue;
      recv(out.subspan(chunk.size() * static_cast<std::size_t>(peer),
                       chunk.size()),
           peer, tag);
    }
  } else {
    send(chunk, root, tag);
  }
}

}  // namespace mad2::mpi
