#include "mpi/sci_baselines.hpp"

#include <cstring>

#include "util/bytes.hpp"

namespace mad2::mpi {

SciBaselineParams SciBaselineParams::scampi_like() {
  SciBaselineParams p;
  p.name = "scampi-like";
  p.buffer_bytes = 16 * 1024;
  p.buffers = 2;
  p.per_message_cost = sim::from_us(0.5);
  p.per_chunk_cost = sim::from_us(0.5);
  return p;
}

SciBaselineParams SciBaselineParams::scimpich_like() {
  SciBaselineParams p;
  p.name = "scimpich-like";
  p.buffer_bytes = 8 * 1024;
  p.buffers = 1;  // fully serialized chunk pipeline
  p.per_message_cost = sim::from_us(1.5);
  p.per_chunk_cost = sim::from_us(1.0);
  return p;
}

SciBaselineWorld::SciBaselineWorld(net::SciNetwork& network,
                                   SciBaselineParams params)
    : network_(&network), params_(std::move(params)) {
  const auto n = static_cast<std::uint32_t>(network_->size());
  for (std::uint32_t src = 0; src < n; ++src) {
    for (std::uint32_t dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      Pair p;
      const std::uint64_t ring_bytes =
          static_cast<std::uint64_t>(params_.buffers) *
          (kHeaderBytes + params_.buffer_bytes);
      p.ring = network_->port(dst).create_segment(ring_bytes);
      p.feedback = network_->port(src).create_segment(4);
      p.ring_remote = network_->port(src).connect(dst, p.ring);
      p.feedback_remote = network_->port(dst).connect(src, p.feedback);
      pairs_.emplace((static_cast<std::uint64_t>(src) << 32) | dst,
                     std::move(p));
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    comms_.emplace_back(new SciBaselineComm(this, i));
  }
}

SciBaselineWorld::~SciBaselineWorld() = default;

SciBaselineWorld::Pair& SciBaselineWorld::pair(std::uint32_t src,
                                               std::uint32_t dst) {
  return pairs_.at((static_cast<std::uint64_t>(src) << 32) | dst);
}

bool SciBaselineWorld::unit_ready(std::uint32_t src, std::uint32_t dst) {
  Pair& p = pair(src, dst);
  auto ring = network_->port(dst).segment_memory(p.ring);
  const std::uint64_t offset =
      slot_offset(p.received % params_.buffers);
  return load_u32(ring.data() + offset) ==
         static_cast<std::uint32_t>(p.received + 1);
}

int SciBaselineComm::size() const {
  return static_cast<int>(world_->network_->size());
}

sim::Simulator& SciBaselineComm::simulator() {
  // Every port shares the network's simulator; reach it via the node.
  return *world_->network_->port(rank_).node().simulator();
}

void SciBaselineComm::send(std::span<const std::byte> data, int dst,
                           int tag) {
  MAD2_CHECK(dst >= 0 && dst < size() && dst != rank(), "invalid dst");
  const SciBaselineParams& params = world_->params();
  auto& port = world_->network_->port(rank_);
  auto& node = port.node();
  node.charge_cpu(params.per_message_cost);

  SciBaselineWorld::Pair& p =
      world_->pair(rank_, static_cast<std::uint32_t>(dst));
  auto feedback = port.segment_memory(p.feedback);

  const std::uint64_t total = data.size();
  std::uint64_t done = 0;
  do {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(total - done, params.buffer_bytes);
    node.charge_cpu(params.per_chunk_cost);
    // Flow control: wait until the target ring slot has been consumed.
    port.wait_segment(p.feedback, [&] {
      return p.sent - load_u32(feedback.data()) < params.buffers;
    });
    const std::uint64_t offset =
        world_->slot_offset(p.sent % params.buffers);
    if (chunk > 0) {
      // Eager-copy scheme: the sender stages user data into its send
      // buffer before pushing it through the mapped segment. This copy is
      // on the CPU's critical path and is what keeps these baselines below
      // Madeleine's zero-staging dual-buffered pipeline at large sizes.
      node.charge_memcpy(chunk);
      port.pio_write(p.ring_remote,
                     offset + SciBaselineWorld::kHeaderBytes,
                     data.subspan(done, chunk));
    }
    std::byte header[SciBaselineWorld::kHeaderBytes];
    store_u32(header, static_cast<std::uint32_t>(p.sent + 1));
    store_u32(header + 4, static_cast<std::uint32_t>(chunk));
    store_u32(header + 8, static_cast<std::uint32_t>(tag));
    store_u32(header + 12, static_cast<std::uint32_t>(total));
    port.pio_write(p.ring_remote, offset, header);
    ++p.sent;
    done += chunk;
  } while (done < total);
}

RecvStatus SciBaselineComm::probe() {
  auto& port = world_->network_->port(rank_);
  std::uint32_t from = 0;
  port.wait_delivery([&] {
    for (int candidate = 0; candidate < size(); ++candidate) {
      if (candidate == rank()) continue;
      if (world_->unit_ready(static_cast<std::uint32_t>(candidate),
                             rank_)) {
        from = static_cast<std::uint32_t>(candidate);
        return true;
      }
    }
    return false;
  });
  SciBaselineWorld::Pair& p = world_->pair(from, rank_);
  auto ring = port.segment_memory(p.ring);
  const std::uint64_t offset =
      world_->slot_offset(p.received % world_->params().buffers);
  RecvStatus status;
  status.source = static_cast<int>(from);
  status.tag =
      static_cast<std::int32_t>(load_u32(ring.data() + offset + 8));
  status.bytes = load_u32(ring.data() + offset + 12);
  return status;
}

RecvStatus SciBaselineComm::recv(std::span<std::byte> out, int src,
                                 int tag) {
  const SciBaselineParams& params = world_->params();
  auto& port = world_->network_->port(rank_);
  auto& node = port.node();
  node.charge_cpu(params.per_message_cost);

  // Resolve a wildcard source by polling every incoming ring.
  std::uint32_t from = 0;
  if (src == kAnySource) {
    port.wait_delivery([&] {
      for (int candidate = 0; candidate < size(); ++candidate) {
        if (candidate == rank()) continue;
        if (world_->unit_ready(static_cast<std::uint32_t>(candidate),
                               rank_)) {
          from = static_cast<std::uint32_t>(candidate);
          return true;
        }
      }
      return false;
    });
  } else {
    MAD2_CHECK(src >= 0 && src < size() && src != rank(), "invalid src");
    from = static_cast<std::uint32_t>(src);
  }

  SciBaselineWorld::Pair& p = world_->pair(from, rank_);
  auto ring = port.segment_memory(p.ring);

  RecvStatus status;
  status.source = static_cast<int>(from);
  std::uint64_t total = 0;
  std::uint64_t done = 0;
  bool first = true;
  do {
    node.charge_cpu(params.per_chunk_cost);
    const std::uint64_t offset =
        world_->slot_offset(p.received % params.buffers);
    port.wait_segment(p.ring, [&] {
      return load_u32(ring.data() + offset) ==
             static_cast<std::uint32_t>(p.received + 1);
    });
    const std::uint32_t len = load_u32(ring.data() + offset + 4);
    const auto msg_tag = static_cast<std::int32_t>(
        load_u32(ring.data() + offset + 8));
    if (first) {
      total = load_u32(ring.data() + offset + 12);
      MAD2_CHECK(tag == kAnyTag || msg_tag == tag,
                 "baseline MPI: out-of-order tag match (unsupported)");
      MAD2_CHECK(total <= out.size(), "receive buffer too small");
      status.tag = msg_tag;
      status.bytes = total;
      first = false;
    }
    if (len > 0) {
      node.charge_memcpy(len);
      std::memcpy(out.data() + done,
                  ring.data() + offset + SciBaselineWorld::kHeaderBytes,
                  len);
    }
    ++p.received;
    done += len;
    // Return the consumed counter (keeps the sender's ring moving).
    std::byte counter[4];
    store_u32(counter, static_cast<std::uint32_t>(p.received));
    port.pio_write(p.feedback_remote, 0, counter);
  } while (done < total);
  return status;
}

}  // namespace mad2::mpi
