#include "mad/pmm_ib.hpp"

#include <algorithm>
#include <cstring>

#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {

namespace {

// CTS payload: u32 block count, then (rkey u64, offset u64) per block.
// RTS_READ payload: u32 block count, then (rkey u64, offset u64, len u64).
constexpr std::size_t kCtsEntryBytes = 16;
constexpr std::size_t kReadEntryBytes = 24;

IbPmm::MsgKind imm_kind(std::uint64_t imm) {
  return static_cast<IbPmm::MsgKind>(imm & 0xff);
}
std::uint64_t imm_value(std::uint64_t imm) { return imm >> 8; }

}  // namespace

IbPmm::IbPmm(ChannelEndpoint& endpoint, IbPmmOptions options)
    : endpoint_(endpoint),
      options_(options),
      eager_tm_(this),
      write_tm_(this),
      read_tm_(this) {
  NetworkInstance& network = endpoint_.channel().network();
  MAD2_CHECK(network.ib != nullptr, "IbPmm on a non-IB network");
  port_ = &network.ib->port(network.port(endpoint_.local()));
  incoming_wq_ =
      std::make_unique<sim::WaitQueue>(&endpoint_.session().simulator());
  MAD2_CHECK(options_.eager_cutoff >= 64, "IB eager cutoff too small");
  // Batch at most half the window so the sender is never starved waiting
  // for a batch that cannot fill. The receive pool is sized for any batch
  // (recv_pool_size), so a small qp_depth degrades batching to per-release
  // credit returns instead of aborting the session on a config choice.
  options_.credit_batch = std::max<std::size_t>(
      1, std::min(options_.credit_batch, window() / 2));
}

std::uint32_t IbPmm::qp() const { return endpoint_.channel().id(); }

std::size_t IbPmm::window() const { return port_->params().qp_depth; }

std::size_t IbPmm::recv_pool_size() const {
  // Worst-case simultaneous in-flight messages from one peer while our
  // dispatcher is starved (adverse fiber scheduling):
  //  - `window` credited eager data messages (the credit window bounds
  //    them, and each holds its pool buffer until the app releases it);
  //  - `window` credit-return messages: each carries >= 1 credit and at
  //    most `window` credits are ever out, but the flush-before-block
  //    path can make every one of them a 1-credit message, so the count
  //    is bounded by `window`, not window/credit_batch;
  //  - one RTS / RTS_READ (rendezvous announcements are serialized per
  //    direction) and one CTS / DONE (answers to our own announcements),
  //    plus slack for a checked rail-segment handshake racing a TM one.
  return 2 * window() + 4;
}

std::unique_ptr<Pmm::ConnState> IbPmm::make_conn_state(std::uint32_t remote) {
  auto state = std::make_unique<State>(&endpoint_.session().simulator());
  state->remote = remote;
  state->remote_port = endpoint_.channel().network().port(remote);
  state->credits = window();
  // Eager receive pool: every incoming send consumes a posted receive, so
  // the pool must back the peer's full data window plus control headroom.
  state->pool.resize(recv_pool_size());
  for (auto& buffer : state->pool) {
    buffer.resize(options_.eager_cutoff);
    (void)port_->register_memory(buffer);
    port_->post_recv(state->remote_port, qp(), buffer);
  }
  states_[remote] = state.get();
  by_port_[state->remote_port] = remote;
  peer_order_.push_back(remote);
  return state;
}

void IbPmm::finish_setup() {
  // Learn of link death even when we hold no failable WR of our own: a
  // give-up timer fires on whichever side owned the timed-out WR, but the
  // poison pass runs on both ports, and this hook turns it into a
  // mark_dead that wakes our blocked credit / rendezvous / receive
  // waiters. Without it, a fiber waiting for eager credits (or a CTS)
  // across a dead link would sleep forever.
  port_->add_link_down_callback(
      [this](std::uint32_t peer, const Status& status) {
        const auto it = by_port_.find(peer);
        if (it != by_port_.end()) mark_dead(*states_.at(it->second), status);
      });
  Session& session = endpoint_.session();
  if (session.config().fastpath.has_value()) {
    // CQ reaping as a progress-engine client: the CQ doorbell rings the
    // engine, one drain pass per scheduled batch reaps every completion.
    engine_ = session.progress_engine(endpoint_.local());
    doorbell_ = engine_->register_client(
        this, [](void* ctx) { static_cast<IbPmm*>(ctx)->drain_cq(); });
    port_->set_cq_callback(qp(), [this] { engine_->ring(doorbell_); });
    engine_mode_ = true;
    return;
  }
  session.simulator().spawn_daemon(
      "mad.ib.pump." + endpoint_.channel().name() + "." +
          std::to_string(endpoint_.local()),
      [this] { pump_loop(); });
}

Tm& IbPmm::select_tm(std::size_t len, SendMode, ReceiveMode rmode) {
  if (len <= options_.eager_cutoff) return eager_tm_;
  if (rmode == ReceiveMode::kCheaper) return read_tm_;
  return write_tm_;
}

std::uint32_t IbPmm::wait_incoming() {
  for (;;) {
    drain_cq();
    for (std::size_t k = 0; k < peer_order_.size(); ++k) {
      const std::size_t idx = (rr_next_ + k) % peer_order_.size();
      State& state = *states_.at(peer_order_[idx]);
      if (!state.data_pkts.empty() || !state.rts.empty() ||
          !state.rts_read.empty()) {
        rr_next_ = (idx + 1) % peer_order_.size();
        return peer_order_[idx];
      }
    }
    incoming_wq_->wait();
  }
}

double IbPmm::bandwidth_hint_mbs() const {
  const net::IbParams& p = port_->params();
  return std::min(p.fabric.wire_mbs, p.pci_dma_mbs);
}

IbPmm::State& IbPmm::state_of_port(std::uint32_t port) {
  return *states_.at(by_port_.at(port));
}

std::size_t IbPmm::pool_index(State& state, const std::byte* data) {
  for (std::size_t i = 0; i < state.pool.size(); ++i) {
    if (state.pool[i].data() == data) return i;
  }
  MAD2_CHECK(false, "IB completion on unknown eager buffer");
  return 0;
}

void IbPmm::repost(State& state, std::size_t index) {
  port_->post_recv(state.remote_port, qp(), state.pool[index]);
}

void IbPmm::mark_dead(State& state, const Status& status) {
  if (state.dead) return;
  state.dead = true;
  state.dead_status = status.is_ok()
                          ? Status(ErrorCode::kUnavailable, "ib: link dead")
                          : status;
  state.credits_wq.notify_all();
  state.rdv_wq.notify_all();
  state.recv_wq.notify_all();
  incoming_wq_->notify_all();
}

bool IbPmm::check_dead(State& state) {
  if (state.dead) return true;
  const Status& status = port_->link_status(state.remote_port);
  if (!status.is_ok()) {
    mark_dead(state, status);
    return true;
  }
  return false;
}

bool IbPmm::wait_or_give_up(State& state, sim::WaitQueue& wq,
                            sim::Time deadline) {
  if (wq.wait(deadline)) {
    // The handshake went quiet past the give-up deadline: declare the
    // link dead ourselves (no-op if a timer beat us to it).
    port_->fail_link(state.remote_port,
                     Status(ErrorCode::kUnavailable,
                            "ib: rendezvous handshake timed out"));
    check_dead(state);
    return false;
  }
  return !check_dead(state);
}

void IbPmm::pump_loop() {
  if (states_.empty()) return;
  for (;;) {
    net::IbCompletion completion = port_->wait_cq(qp());
    dispatch(completion);
  }
}

void IbPmm::drain_cq() {
  if (drain_active_) return;
  drain_active_ = true;
  while (auto completion = port_->poll_cq(qp())) dispatch(*completion);
  drain_active_ = false;
}

void IbPmm::dispatch(const net::IbCompletion& completion) {
  State& state = state_of_port(completion.peer);
  if (!completion.ok) {
    mark_dead(state, port_->link_status(completion.peer));
    // Error-flushed WRs still resolve their waiters' counters below.
  }
  switch (completion.kind) {
    case net::IbCompletion::Kind::kRecv: {
      const MsgKind kind = imm_kind(completion.imm);
      const std::uint64_t value = imm_value(completion.imm);
      const std::size_t index = pool_index(state, completion.buffer.data());
      switch (kind) {
        case MsgKind::kData:
          state.data_pkts.emplace_back(index, completion.bytes);
          state.recv_wq.notify_all();
          break;  // buffer handed to the app; reposted on release
        case MsgKind::kCredit:
          state.credits += value;
          state.credits_wq.notify_all();
          repost(state, index);
          break;
        case MsgKind::kRts:
          state.rts.push_back(value);
          state.recv_wq.notify_all();
          repost(state, index);
          break;
        case MsgKind::kCts: {
          Cts cts;
          cts.seq = value;
          const std::byte* p = completion.buffer.data();
          const std::uint32_t count = load_u32(p);
          p += 4;
          cts.blocks.resize(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            cts.blocks[i].rkey = load_u64(p);
            cts.blocks[i].offset = load_u64(p + 8);
            p += kCtsEntryBytes;
          }
          state.cts_queue.push_back(std::move(cts));
          state.rdv_wq.notify_all();
          repost(state, index);
          break;
        }
        case MsgKind::kRtsRead: {
          const std::byte* p = completion.buffer.data();
          const std::uint32_t count = load_u32(p);
          p += 4;
          std::vector<ReadBlock> blocks(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            blocks[i].rkey = load_u64(p);
            blocks[i].offset = load_u64(p + 8);
            blocks[i].len = load_u64(p + 16);
            p += kReadEntryBytes;
          }
          state.rts_read.push_back(std::move(blocks));
          state.recv_wq.notify_all();
          repost(state, index);
          break;
        }
        case MsgKind::kDone:
          ++state.read_done_acks;
          state.rdv_wq.notify_all();
          repost(state, index);
          break;
        case MsgKind::kFin:
          MAD2_CHECK(false, "kFin arrives as a write immediate, not a send");
          break;
      }
      incoming_wq_->notify_all();
      break;
    }
    case net::IbCompletion::Kind::kWriteImm:
      MAD2_CHECK(imm_kind(completion.imm) == MsgKind::kFin,
                 "unexpected write immediate");
      state.write_imms.push_back(imm_value(completion.imm));
      state.rdv_wq.notify_all();
      break;
    case net::IbCompletion::Kind::kRdmaWrite:
      ++state.write_acks;
      state.rdv_wq.notify_all();
      break;
    case net::IbCompletion::Kind::kRdmaRead:
      ++state.read_dones;
      state.rdv_wq.notify_all();
      break;
    case net::IbCompletion::Kind::kSend:
      break;  // eager sends are unsignaled; only error flushes land here
  }
}

void IbPmm::send_ctrl(State& state, MsgKind kind, std::uint64_t value,
                      std::span<const std::byte> payload) {
  MAD2_CHECK(payload.size() <= options_.eager_cutoff,
             "IB control payload exceeds the eager buffer size");
  (void)port_->post_send(state.remote_port, qp(), payload,
                         encode_imm(kind, value));
}

// -------------------------------------------------------------- IbEagerTm ---

void IbEagerTm::send_buffer(Connection&, std::span<const std::byte>) {
  MAD2_CHECK(false, "IB eager TM only moves static buffers");
}

void IbEagerTm::receive_buffer(Connection&, std::span<std::byte>) {
  MAD2_CHECK(false, "IB eager TM only moves static buffers");
}

StaticBuffer IbEagerTm::obtain_static_buffer(Connection&) {
  std::size_t index;
  if (!pmm_->staging_free_.empty()) {
    index = pmm_->staging_free_.back();
    pmm_->staging_free_.pop_back();
  } else {
    index = pmm_->staging_.size();
    pmm_->staging_.emplace_back(pmm_->options().eager_cutoff);
    (void)pmm_->port().register_memory(pmm_->staging_.back());
  }
  return StaticBuffer{std::span<std::byte>(pmm_->staging_[index]), 0,
                      index + 1};
}

void IbEagerTm::send_static_buffer(Connection& connection,
                                   StaticBuffer& buffer) {
  auto& state = connection.state<IbPmm::State>();
  const std::size_t index = buffer.handle - 1;
  if (state.credits == 0 && !pmm_->check_dead(state)) {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "ib.credit_wait");
    wait.args(buffer.used);
    pmm_->drain_cq();
    while (state.credits == 0 && !state.dead) state.credits_wq.wait();
  }
  if (state.dead) {
    // Link died while we waited for credits: the session is failing, so
    // drop the message and recycle the staging slot instead of re-sleeping
    // on a credit that can never arrive.
    pmm_->staging_free_.push_back(index);
    buffer = StaticBuffer{};
    return;
  }
  --state.credits;
  // post_send copies at post time: the staging buffer recycles at once.
  (void)pmm_->port().post_send(
      state.remote_port, pmm_->qp(),
      std::span<const std::byte>(pmm_->staging_[index]).first(buffer.used),
      IbPmm::encode_imm(IbPmm::MsgKind::kData, 0));
  pmm_->staging_free_.push_back(index);
  buffer = StaticBuffer{};
}

StaticBuffer IbEagerTm::receive_static_buffer(Connection& connection) {
  auto& state = connection.state<IbPmm::State>();
  pmm_->drain_cq();
  if (state.data_pkts.empty() && state.credit_owed > 0) {
    // About to block: flush owed credits, the sender may be starved
    // below the batching threshold.
    pmm_->send_ctrl(state, IbPmm::MsgKind::kCredit, state.credit_owed);
    state.credit_owed = 0;
  }
  while (state.data_pkts.empty() && !state.dead) state.recv_wq.wait();
  if (state.data_pkts.empty()) {
    // Link died with nothing queued (already-landed data still drains
    // above): hand back an empty buffer so the caller's unwind runs
    // instead of wedging this fiber forever.
    return StaticBuffer{};
  }
  auto [index, bytes] = state.data_pkts.front();
  state.data_pkts.pop_front();
  return StaticBuffer{std::span<std::byte>(state.pool[index]).first(bytes),
                      bytes, index + 1};
}

void IbEagerTm::release_static_buffer(Connection& connection,
                                      StaticBuffer& buffer) {
  auto& state = connection.state<IbPmm::State>();
  if (buffer.handle == 0) return;  // dead-link receive: nothing to repost
  const std::size_t index = buffer.handle - 1;
  pmm_->repost(state, index);
  buffer = StaticBuffer{};
  if (++state.credit_owed >= pmm_->options().credit_batch) {
    pmm_->send_ctrl(state, IbPmm::MsgKind::kCredit, state.credit_owed);
    state.credit_owed = 0;
  }
}

bool IbEagerTm::try_retain_static_buffer(Connection& connection) {
  auto& state = connection.state<IbPmm::State>();
  if (state.retained >= pmm_->window() / 2) return false;
  ++state.retained;
  return true;
}

void IbEagerTm::release_retained_static_buffer(Connection& connection,
                                               StaticBuffer& buffer) {
  auto& state = connection.state<IbPmm::State>();
  MAD2_CHECK(state.retained > 0,
             "retained-slot release without a matching retain");
  --state.retained;
  release_static_buffer(connection, buffer);
}

// ---------------------------------------------------------- IbRdmaWriteTm ---

void IbRdmaWriteTm::send_buffer(Connection& connection,
                                std::span<const std::byte> data) {
  send_buffer_group(connection, {data});
}

void IbRdmaWriteTm::send_buffer_group(
    Connection& connection,
    const std::vector<std::span<const std::byte>>& group) {
  auto& state = connection.state<IbPmm::State>();
  std::uint64_t total = 0;
  for (const auto& block : group) total += block.size();

  pmm_->send_ctrl(state, IbPmm::MsgKind::kRts, total);
  {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "ib.cts_wait");
    wait.args(total, group.size());
    pmm_->drain_cq();
    while (state.cts_queue.empty() && !state.dead) state.rdv_wq.wait();
  }
  if (state.dead) return;  // session is failing; nothing sane to send
  IbPmm::Cts cts = std::move(state.cts_queue.front());
  state.cts_queue.pop_front();
  MAD2_CHECK(cts.blocks.size() == group.size(),
             "rendezvous block-count mismatch: asymmetric pack/unpack "
             "sequences");

  // Pin the source blocks through the registration cache and write them
  // straight into the advertised landing regions; the immediate on the
  // last block raises the receiver's completion (no FIN round).
  std::vector<net::IbMr> mrs;
  mrs.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    mrs.push_back(
        pmm_->port().reg_cache().acquire(group[i].data(), group[i].size()));
    const bool last = i + 1 == group.size();
    (void)pmm_->port().post_rdma_write(
        state.remote_port, pmm_->qp(), group[i], cts.blocks[i].rkey,
        cts.blocks[i].offset,
        last ? IbPmm::encode_imm(IbPmm::MsgKind::kFin, cts.seq) : 0);
  }
  {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "ib.write_ack_wait");
    wait.args(total);
    while (state.write_acks < group.size() && !state.dead) {
      state.rdv_wq.wait();
    }
  }
  if (state.write_acks >= group.size()) state.write_acks -= group.size();
  for (const net::IbMr& mr : mrs) pmm_->port().reg_cache().release(mr);
}

void IbRdmaWriteTm::receive_buffer(Connection& connection,
                                   std::span<std::byte> out) {
  std::vector<std::span<std::byte>> group{out};
  receive_sub_buffer_group(connection, group);
}

void IbRdmaWriteTm::receive_sub_buffer_group(
    Connection& connection, const std::vector<std::span<std::byte>>& group) {
  auto& state = connection.state<IbPmm::State>();
  pmm_->drain_cq();
  while (state.rts.empty() && !state.dead) state.recv_wq.wait();
  if (state.dead) return;
  const std::uint64_t announced = state.rts.front();
  state.rts.pop_front();

  std::uint64_t total = 0;
  for (const auto& block : group) total += block.size();
  MAD2_CHECK(announced == total,
             "rendezvous size mismatch: asymmetric pack/unpack sequences");

  // Pin the landing blocks and advertise their rkeys in the CTS.
  MAD2_CHECK(4 + group.size() * kCtsEntryBytes <= pmm_->options().eager_cutoff,
             "rendezvous group too large for one CTS");
  const std::uint64_t seq = state.next_seq++;
  std::vector<net::IbMr> mrs;
  mrs.reserve(group.size());
  std::vector<std::byte> payload(4 + group.size() * kCtsEntryBytes);
  store_u32(payload.data(), static_cast<std::uint32_t>(group.size()));
  std::byte* p = payload.data() + 4;
  for (const auto& block : group) {
    const net::IbMr mr =
        pmm_->port().reg_cache().acquire(block.data(), block.size());
    store_u64(p, mr.key);
    store_u64(p + 8,
              reinterpret_cast<std::uintptr_t>(block.data()) - mr.base);
    p += kCtsEntryBytes;
    mrs.push_back(mr);
  }
  pmm_->send_ctrl(state, IbPmm::MsgKind::kCts, seq, payload);
  {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "ib.write_imm_wait");
    wait.args(total, group.size());
    while (state.write_imms.empty() && !state.dead) state.rdv_wq.wait();
  }
  if (!state.write_imms.empty()) {
    MAD2_CHECK(state.write_imms.front() == seq,
               "write-rendezvous completion out of order");
    state.write_imms.pop_front();
  }
  for (const net::IbMr& mr : mrs) pmm_->port().reg_cache().release(mr);
}

// ----------------------------------------------------------- IbRdmaReadTm ---

void IbRdmaReadTm::send_buffer(Connection& connection,
                               std::span<const std::byte> data) {
  send_buffer_group(connection, {data});
}

void IbRdmaReadTm::send_buffer_group(
    Connection& connection,
    const std::vector<std::span<const std::byte>>& group) {
  auto& state = connection.state<IbPmm::State>();
  std::uint64_t total = 0;
  for (const auto& block : group) total += block.size();

  // Pin the source blocks and advertise them; the receiver pulls with
  // RDMA reads whenever it lands the data (receiver-driven CHEAPER).
  MAD2_CHECK(
      4 + group.size() * kReadEntryBytes <= pmm_->options().eager_cutoff,
      "rendezvous group too large for one RTS_READ");
  std::vector<net::IbMr> mrs;
  mrs.reserve(group.size());
  std::vector<std::byte> payload(4 + group.size() * kReadEntryBytes);
  store_u32(payload.data(), static_cast<std::uint32_t>(group.size()));
  std::byte* p = payload.data() + 4;
  for (const auto& block : group) {
    const net::IbMr mr =
        pmm_->port().reg_cache().acquire(block.data(), block.size());
    store_u64(p, mr.key);
    store_u64(p + 8,
              reinterpret_cast<std::uintptr_t>(block.data()) - mr.base);
    store_u64(p + 16, block.size());
    p += kReadEntryBytes;
    mrs.push_back(mr);
  }
  pmm_->send_ctrl(state, IbPmm::MsgKind::kRtsRead, total, payload);
  {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "ib.read_done_wait");
    wait.args(total, group.size());
    pmm_->drain_cq();
    while (state.read_done_acks == 0 && !state.dead) state.rdv_wq.wait();
  }
  if (state.read_done_acks > 0) --state.read_done_acks;
  for (const net::IbMr& mr : mrs) pmm_->port().reg_cache().release(mr);
}

void IbRdmaReadTm::receive_buffer(Connection& connection,
                                  std::span<std::byte> out) {
  std::vector<std::span<std::byte>> group{out};
  receive_sub_buffer_group(connection, group);
}

void IbRdmaReadTm::receive_sub_buffer_group(
    Connection& connection, const std::vector<std::span<std::byte>>& group) {
  auto& state = connection.state<IbPmm::State>();
  pmm_->drain_cq();
  while (state.rts_read.empty() && !state.dead) state.recv_wq.wait();
  if (state.dead) return;
  std::vector<IbPmm::ReadBlock> blocks = std::move(state.rts_read.front());
  state.rts_read.pop_front();
  MAD2_CHECK(blocks.size() == group.size(),
             "rendezvous block-count mismatch: asymmetric pack/unpack "
             "sequences");

  std::vector<net::IbMr> mrs;
  mrs.reserve(group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    MAD2_CHECK(blocks[i].len == group[i].size(),
               "rendezvous size mismatch: asymmetric pack/unpack sequences");
    mrs.push_back(
        pmm_->port().reg_cache().acquire(group[i].data(), group[i].size()));
    (void)pmm_->port().post_rdma_read(state.remote_port, pmm_->qp(),
                                      group[i], blocks[i].rkey,
                                      blocks[i].offset);
  }
  {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "ib.read_wait");
    wait.args(group.size());
    while (state.read_dones < group.size() && !state.dead) {
      state.rdv_wq.wait();
    }
  }
  if (state.read_dones >= group.size()) state.read_dones -= group.size();
  for (const net::IbMr& mr : mrs) pmm_->port().reg_cache().release(mr);
  // Fire-and-forget: the source only needs to know its pins can drop.
  pmm_->send_ctrl(state, IbPmm::MsgKind::kDone, 0);
}

// ------------------------------------------------- checked rail segments ---

Status IbPmm::segment_send_checked(Connection& connection,
                                   std::span<const std::byte> data) {
  auto& state = connection.state<State>();
  if (check_dead(state)) return state.dead_status;
  const sim::Time deadline =
      endpoint_.session().simulator().now() + port_->params().op_timeout;

  send_ctrl(state, MsgKind::kRts, data.size());
  drain_cq();
  while (state.cts_queue.empty()) {
    if (check_dead(state)) return state.dead_status;
    if (!wait_or_give_up(state, state.rdv_wq, deadline)) {
      return state.dead_status;
    }
  }
  Cts cts = std::move(state.cts_queue.front());
  state.cts_queue.pop_front();
  MAD2_CHECK(cts.blocks.size() == 1, "checked segment expects one block");

  const net::IbMr mr = port_->reg_cache().acquire(data.data(), data.size());
  (void)port_->post_rdma_write(state.remote_port, qp(), data,
                               cts.blocks[0].rkey, cts.blocks[0].offset,
                               encode_imm(MsgKind::kFin, cts.seq));
  while (state.write_acks == 0) {
    if (state.dead) break;  // error CQE resolves write_acks; fall through
    if (!wait_or_give_up(state, state.rdv_wq, deadline)) break;
  }
  if (state.write_acks > 0) --state.write_acks;
  port_->reg_cache().release(mr);
  // All-or-nothing: a dead link means the segment is not claimed
  // delivered, even if some fragments landed (the receiver re-lands the
  // resubmitted copy bit-identically).
  return state.dead ? state.dead_status : Status::ok();
}

Status IbPmm::segment_recv_checked(Connection& connection,
                                   std::span<std::byte> out) {
  auto& state = connection.state<State>();
  if (check_dead(state)) return state.dead_status;
  const sim::Time deadline =
      endpoint_.session().simulator().now() + port_->params().op_timeout;

  drain_cq();
  while (state.rts.empty()) {
    if (check_dead(state)) return state.dead_status;
    if (!wait_or_give_up(state, state.recv_wq, deadline)) {
      return state.dead_status;
    }
  }
  const std::uint64_t announced = state.rts.front();
  state.rts.pop_front();
  MAD2_CHECK(announced == out.size(),
             "checked rail segment size mismatch");

  const net::IbMr mr = port_->reg_cache().acquire(out.data(), out.size());
  const std::uint64_t seq = state.next_seq++;
  std::vector<std::byte> payload(4 + kCtsEntryBytes);
  store_u32(payload.data(), 1);
  store_u64(payload.data() + 4, mr.key);
  store_u64(payload.data() + 12,
            reinterpret_cast<std::uintptr_t>(out.data()) - mr.base);
  send_ctrl(state, MsgKind::kCts, seq, payload);
  while (state.write_imms.empty()) {
    if (check_dead(state)) {
      port_->reg_cache().release(mr);
      return state.dead_status;
    }
    if (!wait_or_give_up(state, state.rdv_wq, deadline)) {
      port_->reg_cache().release(mr);
      return state.dead_status;
    }
  }
  MAD2_CHECK(state.write_imms.front() == seq,
             "checked segment completion out of order");
  state.write_imms.pop_front();
  port_->reg_cache().release(mr);
  return Status::ok();
}

}  // namespace mad2::mad
