// Session, channel and node-runtime objects: the paper's configuration
// layer. A Session describes a simulated cluster (nodes, networks,
// channels), builds every driver and protocol object up front, and runs
// application bodies as fibers on the nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "hw/node.hpp"
#include "mad/congestion.hpp"
#include "mad/connection.hpp"
#include "mad/hostdb.hpp"
#include "mad/bip_options.hpp"
#include "mad/ib_options.hpp"
#include "mad/progress.hpp"
#include "mad/rail_set.hpp"
#include "mad/sci_options.hpp"
#include "net/bip.hpp"
#include "net/ib.hpp"
#include "net/sbp.hpp"
#include "net/sisci.hpp"
#include "net/tcp.hpp"
#include "net/via.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/status.hpp"

namespace mad2::mad {

class Session;
class Channel;
class ChannelEndpoint;

enum class NetworkKind {
  kBip,
  kSisci,
  kTcp,
  kVia,
  /// SBP (paper reference [14]): a static-buffer-only kernel protocol over
  /// Ethernet — the Section 6.1 example of an interface that requires all
  /// data to be written into specific buffers before sending.
  kSbp,
  /// InfiniBand-style RDMA HCA (PAPERS.md: "Design and Implementation of
  /// MPICH2 over InfiniBand with RDMA Support"): queue pairs, explicit
  /// memory registration with pin-down cost, RDMA write/read, completion
  /// queues. The IbPmm splits eager send/recv from RDMA rendezvous at a
  /// configurable cutoff and shares a per-port registration cache.
  kIb,
  /// No built-in driver: the channel's protocol module comes from
  /// NetworkDef::custom_pmm. This is how Madeleine runs "on top of common
  /// MPI implementations" (paper Section 5.3/Conclusion) — see
  /// mpi/pmm_mpi.hpp — and how downstream users add new interfaces.
  kCustom,
};

std::string_view to_string(NetworkKind kind);

/// One physical network in the session configuration.
struct NetworkDef {
  std::string name;
  NetworkKind kind = NetworkKind::kTcp;
  /// Global node ids attached to this network (its adapter set).
  std::vector<std::uint32_t> nodes;
  // Optional driver parameter overrides (defaults are the paper's models).
  std::optional<net::BipParams> bip_params;
  std::optional<net::SciParams> sci_params;
  std::optional<net::TcpParams> tcp_params;
  std::optional<net::ViaParams> via_params;
  std::optional<net::SbpParams> sbp_params;
  std::optional<net::IbParams> ib_params;
  /// For kCustom: builds the protocol module of each endpoint.
  std::function<std::unique_ptr<class Pmm>(ChannelEndpoint&)> custom_pmm;
};

/// One Madeleine channel: a closed world for communication, bound to one
/// network (paper Section 2.1). Several channels may share a network.
struct ChannelDef {
  ChannelDef() = default;
  ChannelDef(std::string name_, std::string network_)
      : name(std::move(name_)), network(std::move(network_)) {}

  std::string name;
  std::string network;
  /// SISCI-channel override (e.g. enable the DMA TM); ignored elsewhere.
  std::optional<SciPmmOptions> sci_options;
  /// BIP-channel override (credit window sizing); ignored elsewhere.
  std::optional<BipPmmOptions> bip_options;
  /// IB-channel override (eager cutoff, credit batching); ignored
  /// elsewhere.
  std::optional<IbPmmOptions> ib_options;
  /// Debug aid: prepend a check block to every packed block so asymmetric
  /// pack/unpack sequences fail loudly at the first divergence instead of
  /// corrupting data ("unspecified behavior" per paper Section 2.2). Both
  /// sides of the channel share this setting by construction. Costs one
  /// extra small block per pack; never enable for benchmarking.
  bool paranoid = false;
};

/// Library-level CPU costs (pack/unpack bookkeeping). These produce the
/// Madeleine-over-raw overhead the paper reports (e.g. BIP 5 us -> 7 us).
struct MadCosts {
  sim::Duration begin_packing = sim::from_us(0.3);
  sim::Duration pack = sim::from_us(0.2);
  sim::Duration end_packing = sim::from_us(0.3);
  sim::Duration begin_unpacking = sim::from_us(0.3);
  sim::Duration unpack = sim::from_us(0.2);
  sim::Duration end_unpacking = sim::from_us(0.3);
};

struct SessionConfig {
  std::size_t node_count = 0;
  std::vector<NetworkDef> networks;
  std::vector<ChannelDef> channels;
  /// Rail sets striping large blocks across several channels (see
  /// mad/rail_set.hpp). Each names existing channels; members must be
  /// dedicated to the set.
  std::vector<RailSetDef> rail_sets;
  hw::HostParams host = hw::HostParams::pentium_ii_450();
  MadCosts costs;
  /// madtrace stanza (`trace { ... }` in config files): when set, the
  /// Session installs its own TraceRecorder + MetricsRegistry for its
  /// lifetime — unless the MAD2_TRACE environment already installed a
  /// process-wide one, which takes precedence (see obs/trace.hpp).
  std::optional<obs::TraceConfig> trace;
  /// `congestion` stanza: end-to-end windows and weighted-fair flow
  /// scheduling (see mad/congestion.hpp). Consumed by rail sets (lane
  /// arbitration) and by virtual channels built over this session
  /// (gateway fair queues + per-flow windows). Absent = all off.
  std::optional<CongestionConfig> congestion;
  /// `topology` stanza: resilient multi-gateway routing for virtual
  /// channels built over this session (see mad/hostdb.hpp and
  /// docs/ROUTING.md). Absent = single-gateway routing, wire-identical
  /// to earlier releases.
  std::optional<TopologyConfig> topology;
  /// `fastpath` stanza: allocation-free short-message path and batched
  /// progress engine (see docs/PERFORMANCE.md). Each node gets a
  /// ProgressEngine daemon; drivers coalesce small sends and deferred
  /// credit returns through it. Absent = all off, wire bit-identical to
  /// earlier releases.
  std::optional<FastPathConfig> fastpath;
};

/// A session network instance: the driver plus the global-node -> local
/// port mapping.
struct NetworkInstance {
  NetworkDef def;
  std::unique_ptr<net::BipNetwork> bip;
  std::unique_ptr<net::SciNetwork> sci;
  std::unique_ptr<net::TcpNetwork> tcp;
  std::unique_ptr<net::ViaNetwork> via;
  std::unique_ptr<net::SbpNetwork> sbp;
  std::unique_ptr<net::IbNetwork> ib;
  std::map<std::uint32_t, std::uint32_t> port_of_node;
  /// Reverse lookup (port index -> global node id); same order as
  /// def.nodes since ports are assigned by membership order.
  std::vector<std::uint32_t> node_of_port;

  [[nodiscard]] bool has_node(std::uint32_t node) const {
    return port_of_node.count(node) != 0;
  }
  [[nodiscard]] std::uint32_t port(std::uint32_t node) const;
};

/// Where a network failure was absorbed (Session::route_network_failure).
enum class FailureDomain {
  /// Nobody claimed it: the session is failing.
  kUnknown,
  /// A rail set marked a secondary rail dead and rescheduled around it.
  kRail,
  /// A forwarding layer re-routed the affected virtual-channel hop
  /// (e.g. a dead gateway with surviving siblings on its boundary).
  kHop,
  /// A node was declared dead in the host directory with no routing
  /// layer able to absorb it; the session is failing.
  kNode,
};

std::string_view to_string(FailureDomain domain);

/// A link/network failure report. src_node is the (global id of the)
/// reporting end, dst_node the unresponsive end; either may be kNoNode
/// when the driver cannot attribute the failure to specific endpoints.
struct NetworkFailure {
  static constexpr std::uint32_t kNoNode = 0xffffffffu;
  const NetworkInstance* network = nullptr;
  Status status;
  std::uint32_t src_node = kNoNode;
  std::uint32_t dst_node = kNoNode;
};

/// Per-node local view of a channel: where begin_packing / begin_unpacking
/// live. Owns the PMM and the connections to every peer.
class ChannelEndpoint {
 public:
  ChannelEndpoint(Session* session, Channel* channel, std::uint32_t local);
  ~ChannelEndpoint();

  /// Start an outgoing message to `remote` (global node id). Returns the
  /// connection object to pack into (paper: mad_begin_packing).
  Connection& begin_packing(std::uint32_t remote);

  /// Start extracting the first incoming message on this channel. Returns
  /// the connection it arrived on (paper: mad_begin_unpacking).
  Connection& begin_unpacking();

  [[nodiscard]] Connection& connection(std::uint32_t remote);

  /// Aggregate traffic statistics across this endpoint's connections.
  [[nodiscard]] TrafficStats stats() const;

  [[nodiscard]] std::uint32_t local() const { return local_; }
  [[nodiscard]] Channel& channel() { return *channel_; }
  [[nodiscard]] Session& session() { return *session_; }
  [[nodiscard]] Pmm& pmm() { return *pmm_; }
  [[nodiscard]] hw::Node& node();
  [[nodiscard]] const MadCosts& costs() const;

 private:
  friend class Connection;
  friend class RailSet;
  Session* session_;
  Channel* channel_;
  std::uint32_t local_;
  std::unique_ptr<Pmm> pmm_;
  std::map<std::uint32_t, std::unique_ptr<Connection>> connections_;
  Connection* active_incoming_ = nullptr;
};

class Channel {
 public:
  Channel(Session* session, std::uint32_t id, ChannelDef def,
          NetworkInstance* network);
  ~Channel();

  [[nodiscard]] const std::string& name() const { return def_.name; }
  [[nodiscard]] const ChannelDef& def() const { return def_; }
  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] NetworkInstance& network() { return *network_; }
  [[nodiscard]] const std::vector<std::uint32_t>& nodes() const {
    return network_->def.nodes;
  }
  [[nodiscard]] ChannelEndpoint& endpoint(std::uint32_t node);
  [[nodiscard]] Session& session() { return *session_; }

 private:
  friend class Session;
  Session* session_;
  std::uint32_t id_;
  ChannelDef def_;
  NetworkInstance* network_;
  std::map<std::uint32_t, std::unique_ptr<ChannelEndpoint>> endpoints_;
};

/// The per-node application context handed to spawned bodies.
class NodeRuntime {
 public:
  NodeRuntime(Session* session, std::uint32_t rank)
      : session_(session), rank_(rank) {}

  [[nodiscard]] std::uint32_t rank() const { return rank_; }
  [[nodiscard]] Session& session() { return *session_; }
  [[nodiscard]] ChannelEndpoint& channel(const std::string& name);
  [[nodiscard]] hw::Node& node();
  [[nodiscard]] sim::Simulator& simulator();

 private:
  Session* session_;
  std::uint32_t rank_;
};

class Session {
 public:
  explicit Session(SessionConfig config);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] hw::Node& node(std::uint32_t id);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

  [[nodiscard]] Channel& channel(const std::string& name);
  [[nodiscard]] ChannelEndpoint& endpoint(const std::string& channel_name,
                                          std::uint32_t node);
  [[nodiscard]] NetworkInstance& network(const std::string& name);
  [[nodiscard]] RailSet& rail_set(const std::string& name);

  /// Run `body` as a fiber on `node` when run() starts.
  void spawn(std::uint32_t node, std::string name,
             std::function<void(NodeRuntime&)> body);

  /// Run the simulation to completion (all spawned bodies finished), or
  /// until a network declares a link dead — then the first failure is
  /// returned instead of a spurious stuck-fiber deadlock report.
  Status run();

  /// Record an unrecoverable failure (first one wins) and stop the
  /// simulation after the current event. Wired to every driver's error
  /// handler; applications may also call it to abort a run cleanly.
  void fail(const Status& status);

  /// OK until fail() was called; then the first recorded failure.
  [[nodiscard]] const Status& health() const { return health_; }

  /// Topology/membership directory (adapters filled from the network
  /// defs; gateway roles registered by virtual channels).
  [[nodiscard]] Hostdb& hostdb() { return hostdb_; }

  /// The node's batched progress engine, or nullptr when the session has
  /// no `fastpath` stanza. Drivers register flush clients during
  /// finish_setup and ring doorbells from their hot paths.
  [[nodiscard]] ProgressEngine* progress_engine(std::uint32_t node);

  /// A routing layer's claim on network failures. Return the domain that
  /// absorbed the failure, or kUnknown to pass it to the next listener.
  using FailureListener = std::function<FailureDomain(const NetworkFailure&)>;

  /// Register/unregister a failure listener (e.g. a resilient virtual
  /// channel). Listeners are consulted after rail sets, in registration
  /// order; remove before the listener's owner dies.
  std::uint64_t add_failure_listener(FailureListener listener);
  void remove_failure_listener(std::uint64_t id);

  /// Network-failure triage, in order: (1) a repeated report of an
  /// already-routed failure returns its recorded domain with no side
  /// effects; (2) rail sets absorb failures of their secondary rails
  /// (kRail); (3) registered failure listeners may re-route a forwarding
  /// hop (kHop); (4) otherwise the unresponsive node — when the driver
  /// named one — is marked dead in the host directory (kNode) and the
  /// session fails. kUnknown also fails the session.
  FailureDomain route_network_failure(const NetworkFailure& failure);

  /// Pour every counter family this session owns into `registry` as flat
  /// scalar values: TrafficStats per channel endpoint (TM block/byte
  /// counts, rail activity), MemCounters per node, ReliabilityCounters
  /// per reliable link. Latency histograms accumulate in the ambient
  /// registry as messages flow; this adds the counters next to them so
  /// one to_json() snapshot covers the whole stack.
  void export_metrics(obs::MetricsRegistry& registry);

 private:
  /// SLO watchdog: after the simulation finishes, compare every `slo=`
  /// rule from the trace stanza against the matching e2e latency
  /// histograms; on breach, bump `slo.breaches` and auto-dump the flight
  /// recorder plus the weaved cross-node span timeline.
  void check_slo_rules();
  SessionConfig config_;
  /// Config-driven madtrace state; owned here so a recorder installed by
  /// this session is uninstalled in ~Session (declared before the
  /// simulator/channels: destroyed last, after every span closed).
  std::unique_ptr<obs::TraceRecorder> trace_recorder_;
  std::unique_ptr<obs::MetricsRegistry> trace_metrics_;
  sim::Simulator simulator_;
  Status health_;
  Hostdb hostdb_;
  std::vector<std::unique_ptr<hw::Node>> nodes_;
  /// Per-node progress engines; empty unless config_.fastpath is set.
  /// Populated lazily by progress_engine() so only nodes whose drivers
  /// actually batch pay for a daemon fiber.
  std::vector<std::unique_ptr<ProgressEngine>> progress_;
  std::vector<std::unique_ptr<NetworkInstance>> networks_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<RailSet>> rail_sets_;
  std::vector<std::pair<std::uint64_t, FailureListener>> failure_listeners_;
  std::uint64_t next_listener_id_ = 1;
  /// Failures already triaged, keyed by (network, src, dst): a repeated
  /// report returns the recorded domain instead of re-routing.
  std::map<std::tuple<const NetworkInstance*, std::uint32_t, std::uint32_t>,
           FailureDomain>
      routed_failures_;
};

}  // namespace mad2::mad
