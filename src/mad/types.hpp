// Core types of the Madeleine II interface: the pack/unpack semantic flags
// (paper Section 2.2) and the buffer descriptors exchanged between the
// Buffer Management Layer and the Transmission Modules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

namespace mad2::mad {

/// Emission flags (paper Section 2.2).
enum class SendMode : std::uint8_t {
  /// Pack so that later modification of the user memory cannot corrupt the
  /// message (data is consumed before pack returns).
  kSafer,
  /// Do not read the data until end_packing: modifications between pack
  /// and end_packing update the message contents.
  kLater,
  /// Default: the library handles the data as efficiently as possible; the
  /// user must leave it unchanged until the send completes.
  kCheaper,
};

/// Reception flags (paper Section 2.2).
enum class ReceiveMode : std::uint8_t {
  /// The data is guaranteed available immediately after the unpack call
  /// (mandatory when the value controls subsequent unpacks).
  kExpress,
  /// Extraction may be deferred until end_unpacking.
  kCheaper,
};

// Paper-style aliases, for code that wants to read like the original API.
inline constexpr SendMode send_SAFER = SendMode::kSafer;
inline constexpr SendMode send_LATER = SendMode::kLater;
inline constexpr SendMode send_CHEAPER = SendMode::kCheaper;
inline constexpr ReceiveMode receive_EXPRESS = ReceiveMode::kExpress;
inline constexpr ReceiveMode receive_CHEAPER = ReceiveMode::kCheaper;

std::string_view to_string(SendMode mode);
std::string_view to_string(ReceiveMode mode);

/// A protocol-level buffer handed out by a Transmission Module
/// (obtain_static_buffer / receive_static_buffer in Table 2). The memory
/// belongs to the protocol (preallocated BIP short buffers, preregistered
/// VIA buffers); Buffer Management Modules copy user data in and out.
struct StaticBuffer {
  std::span<std::byte> memory;  // protocol-owned capacity
  std::size_t used = 0;         // valid bytes (fill level / received size)
  std::uint64_t handle = 0;     // TM-private bookkeeping
};

/// A zero-copy view into a received protocol buffer (paper Section 6.1:
/// the gateway "borrows" the driver's static buffer instead of staging the
/// payload through a copy). `data` stays valid while `hold` is alive; the
/// last hold released returns the buffer to the Transmission Module.
struct BorrowedBlock {
  std::span<const std::byte> data;
  std::shared_ptr<void> hold;
};

}  // namespace mad2::mad
