#include "mad/connection.hpp"

#include <algorithm>

#include "mad/rail_set.hpp"
#include "mad/session.hpp"

namespace mad2::mad {

Connection::Connection(ChannelEndpoint* endpoint, std::uint32_t remote,
                       std::unique_ptr<Pmm::ConnState> state)
    : endpoint_(endpoint), remote_(remote), state_(std::move(state)) {}

Connection::~Connection() = default;

std::uint32_t Connection::local() const { return endpoint_->local(); }

hw::Node& Connection::node() { return endpoint_->node(); }

sim::Simulator& Connection::simulator() {
  return endpoint_->session().simulator();
}

const Status& Connection::link_status() const {
  return endpoint_->session().health();
}

void Connection::obs_bind() {
  obs::MetricsRegistry* registry = obs::metrics();
  const obs::TraceRecorder* recorder = obs::recorder();
  if (registry == obs_registry_ && recorder == obs_recorder_) return;
  obs_registry_ = registry;
  obs_recorder_ = recorder;

  const std::string& channel = endpoint_->channel().def().name;
  obs_channel_ok_ =
      recorder == nullptr || recorder->channel_enabled(channel);
  if (registry == nullptr || !obs_channel_ok_) {
    obs_hist_pack_ = nullptr;
    obs_hist_unpack_ = nullptr;
    obs_hist_e2e_ = nullptr;
    return;
  }
  obs_hist_pack_ = registry->histogram(channel + ".pack_to_wire");
  obs_hist_unpack_ = registry->histogram(channel + ".wire_to_unpack");
  obs_hist_e2e_ = registry->histogram(channel + ".e2e");
  obs_flow_tx_ = channel + "/" + std::to_string(local()) + "-" +
                 std::to_string(remote_);
  obs_flow_rx_ = channel + "/" + std::to_string(remote_) + "-" +
                 std::to_string(local());
}

void Connection::begin_packing_message() {
  MAD2_CHECK(!packing_, "begin_packing with a message already open");
  packing_ = true;
  ++stats_.messages_sent;
  pack_sequence_ = 0;
  send_tm_ = nullptr;
  send_bmm_ = nullptr;
  obs_bind();
  if (obs_hist_e2e_ != nullptr) {
    obs_pack_start_ = obs_now();
    // Stamp for the receiving endpoint's end_unpacking: channels deliver
    // messages in FIFO order per connection, so a deque matches exactly.
    obs_registry_->push_stamp(obs_flow_tx_, obs_pack_start_);
  } else if (obs_switch_on()) {
    obs_pack_start_ = obs_now();
  }
  node().charge_cpu(endpoint_->costs().begin_packing);
  stats_.switching.pack_cpu_ticks +=
      static_cast<std::uint64_t>(endpoint_->costs().begin_packing);
}

void Connection::begin_unpacking_message() {
  MAD2_CHECK(!unpacking_, "begin_unpacking with a message already open");
  unpacking_ = true;
  ++stats_.messages_received;
  unpack_sequence_ = 0;
  recv_tm_ = nullptr;
  recv_bmm_ = nullptr;
  obs_bind();
  if (obs_hist_unpack_ != nullptr || obs_switch_on()) {
    obs_unpack_start_ = obs_now();
  }
  node().charge_cpu(endpoint_->costs().begin_unpacking);
  stats_.switching.unpack_cpu_ticks +=
      static_cast<std::uint64_t>(endpoint_->costs().begin_unpacking);
}

void Connection::build_dispatch() {
  dispatch_built_ = true;
  std::optional<std::vector<std::size_t>> breaks =
      endpoint_->pmm().selection_breakpoints();
  if (!breaks.has_value()) return;  // PMM keeps the per-call query
  dispatch_breaks_ = std::move(*breaks);
  std::sort(dispatch_breaks_.begin(), dispatch_breaks_.end());
  dispatch_breaks_.erase(
      std::unique(dispatch_breaks_.begin(), dispatch_breaks_.end()),
      dispatch_breaks_.end());
  const std::size_t classes = dispatch_breaks_.size() + 1;
  dispatch_.assign(kModePairs * classes, DispatchEntry{});
  for (std::uint8_t s = 0; s < 3; ++s) {
    for (std::uint8_t r = 0; r < 2; ++r) {
      const auto smode = static_cast<SendMode>(s);
      const auto rmode = static_cast<ReceiveMode>(r);
      for (std::size_t c = 0; c < classes; ++c) {
        // Any length inside the class answers for the whole class; use
        // the smallest one. BMMs and stats rows resolve lazily on first
        // use so building the table leaves no trace in the stats maps.
        const std::size_t rep = c == 0 ? 0 : dispatch_breaks_[c - 1] + 1;
        DispatchEntry& entry = dispatch_[mode_pair(smode, rmode) * classes + c];
        entry.tm = &endpoint_->pmm().select_tm(rep, smode, rmode);
        entry.kind = select_bmm_kind(*entry.tm, smode, rmode);
      }
    }
  }
  dispatch_enabled_ = true;
}

Connection::DispatchEntry* Connection::dispatch_entry(std::size_t len,
                                                      SendMode smode,
                                                      ReceiveMode rmode) {
  if (!dispatch_built_) build_dispatch();
  if (!dispatch_enabled_) return nullptr;
  const std::size_t classes = dispatch_breaks_.size() + 1;
  std::size_t c = 0;
  while (c < dispatch_breaks_.size() && len > dispatch_breaks_[c]) ++c;
  return &dispatch_[mode_pair(smode, rmode) * classes + c];
}

Connection::SwitchDecision Connection::probe_switch(std::size_t len,
                                                    SendMode smode,
                                                    ReceiveMode rmode) {
  if (DispatchEntry* entry = dispatch_entry(len, smode, rmode)) {
    return SwitchDecision{entry->tm, entry->kind, true};
  }
  Tm& tm = endpoint_->pmm().select_tm(len, smode, rmode);
  return SwitchDecision{&tm, select_bmm_kind(tm, smode, rmode), false};
}

SendBmm* Connection::send_bmm_for(Tm* tm, BmmKind kind) {
  auto key = std::make_pair(tm, kind);
  auto it = send_bmms_.find(key);
  if (it == send_bmms_.end()) {
    it = send_bmms_.emplace(key, make_send_bmm(kind)).first;
  }
  return it->second.get();
}

RecvBmm* Connection::recv_bmm_for(Tm* tm, BmmKind kind) {
  auto key = std::make_pair(tm, kind);
  auto it = recv_bmms_.find(key);
  if (it == recv_bmms_.end()) {
    it = recv_bmms_.emplace(key, make_recv_bmm(kind)).first;
  }
  return it->second.get();
}

void Connection::pack(std::span<const std::byte> data, SendMode smode,
                      ReceiveMode rmode) {
  MAD2_CHECK(packing_, "pack outside begin_packing/end_packing");
  if (endpoint_->channel().def().paranoid) {
    // Announce the block so the receiver can verify symmetry. The check
    // block itself rides the normal machinery with fixed modes, so both
    // sides stay symmetric about it too.
    CheckBlock check{kCheckMagic, static_cast<std::uint32_t>(data.size()),
                     static_cast<std::uint8_t>(smode),
                     static_cast<std::uint8_t>(rmode), pack_sequence_++};
    pack_impl(std::as_bytes(std::span<const CheckBlock, 1>(&check, 1)),
              SendMode::kSafer, ReceiveMode::kExpress);
  }
  pack_impl(data, smode, rmode);
}

void Connection::pack_impl(std::span<const std::byte> data, SendMode smode,
                           ReceiveMode rmode) {
  node().charge_cpu(endpoint_->costs().pack);
  stats_.switching.pack_cpu_ticks +=
      static_cast<std::uint64_t>(endpoint_->costs().pack);
  // One tracing verdict per block: the recorder/category flags cannot
  // change mid-call, so the repeated obs_switch_on() queries collapse.
  const bool obs_on = obs_switch_on();

  // Striping decision: large CHEAPER/CHEAPER blocks on a rail-set head go
  // to the rail scheduler. Pure in (len, modes) plus rail state both sides
  // update symmetrically, so the receiver replays the same decision. The
  // open BMM is flushed first — a striped block is a TM change like any
  // other — and `striping_` keeps the scheduler's own framing and inline
  // segment on the normal path.
  if (rails_ != nullptr && !striping_ && smode == SendMode::kCheaper &&
      rmode == ReceiveMode::kCheaper && data.size() >= rails_->threshold()) {
    if (send_bmm_ != nullptr) {
      if (obs_on) {
        obs::trace_event(obs::Category::kSwitch, "switch.flush", "stripe");
      }
      send_bmm_->commit(*this, *send_tm_);
      send_tm_ = nullptr;
      send_bmm_ = nullptr;
    }
    striping_ = true;
    rails_->stripe_send(*this, data);
    striping_ = false;
    return;
  }

  // The Switch (paper Fig. 3): pick the best TM, then route to the BMM
  // the policy dictates. The dispatch table answers when the PMM declared
  // its size classes; otherwise fall back to the per-call virtual query.
  // A TM or BMM change flushes the previous BMM (*commit*) so delivery
  // order is preserved.
  Tm* tm;
  BmmKind kind;
  SendBmm* bmm;
  TmCounters* counters;
  if (DispatchEntry* entry = dispatch_entry(data.size(), smode, rmode)) {
    ++stats_.switching.fast_selects;
    if (entry->send_bmm == nullptr) {
      entry->send_bmm = send_bmm_for(entry->tm, entry->kind);
      entry->sent = &stats_.sent_by_tm[std::string(entry->tm->name())];
    }
    tm = entry->tm;
    kind = entry->kind;
    bmm = entry->send_bmm;
    counters = entry->sent;
  } else {
    ++stats_.switching.legacy_selects;
    tm = &endpoint_->pmm().select_tm(data.size(), smode, rmode);
    kind = select_bmm_kind(*tm, smode, rmode);
    bmm = send_bmm_for(tm, kind);
    counters = &stats_.sent_by_tm[std::string(tm->name())];
  }
  if (obs_on) {
    // TM names are string literals, so the pointer is safe to retain.
    obs::trace_event(obs::Category::kSwitch, "switch.tm_select",
                     tm->name().data(), data.size(),
                     static_cast<std::uint64_t>(kind));
  }
  if (bmm != send_bmm_ || tm != send_tm_) {
    if (send_bmm_ != nullptr) {
      if (obs_on) {
        obs::trace_event(obs::Category::kSwitch, "switch.flush",
                         "tm_change");
      }
      send_bmm_->commit(*this, *send_tm_);
    }
    send_tm_ = tm;
    send_bmm_ = bmm;
  }
  ++counters->blocks;
  counters->bytes += data.size();
  bmm->pack(*this, *tm, data, smode, rmode);
}

void Connection::end_packing() {
  MAD2_CHECK(packing_, "end_packing without begin_packing");
  const bool obs_on = obs_switch_on();
  if (send_bmm_ != nullptr) {
    if (obs_on) {
      obs::trace_event(obs::Category::kSwitch, "switch.flush",
                       "end_packing");
    }
    send_bmm_->commit(*this, *send_tm_);
  }
  send_tm_ = nullptr;
  send_bmm_ = nullptr;
  packing_ = false;
  if (obs_hist_pack_ != nullptr) {
    obs_hist_pack_->record(obs_now() - obs_pack_start_);
  }
  if (obs_on) {
    obs::recorder()->record(obs::Category::kSwitch, "msg.pack", nullptr,
                            obs_pack_start_, obs_now() - obs_pack_start_,
                            stats_.messages_sent, remote_);
  }
  node().charge_cpu(endpoint_->costs().end_packing);
  stats_.switching.pack_cpu_ticks +=
      static_cast<std::uint64_t>(endpoint_->costs().end_packing);
}

void Connection::unpack(std::span<std::byte> out, SendMode smode,
                        ReceiveMode rmode) {
  MAD2_CHECK(unpacking_, "unpack outside begin_unpacking/end_unpacking");
  if (endpoint_->channel().def().paranoid) {
    CheckBlock check{};
    unpack_impl(std::as_writable_bytes(std::span<CheckBlock, 1>(&check, 1)),
                SendMode::kSafer, ReceiveMode::kExpress);
    MAD2_CHECK(check.magic == kCheckMagic,
               "paranoid: stream out of sync (wrong magic) — earlier "
               "pack/unpack asymmetry corrupted the block framing");
    MAD2_CHECK(check.sequence == unpack_sequence_,
               "paranoid: block sequence mismatch (skipped or repeated "
               "unpack)");
    ++unpack_sequence_;
    MAD2_CHECK(check.length == out.size(),
               "paranoid: unpack size differs from the packed block");
    MAD2_CHECK(check.smode == static_cast<std::uint8_t>(smode),
               "paranoid: unpack send-mode differs from the packed block");
    MAD2_CHECK(check.rmode == static_cast<std::uint8_t>(rmode),
               "paranoid: unpack receive-mode differs from the packed "
               "block");
  }
  unpack_impl(out, smode, rmode);
}

void Connection::unpack_impl(std::span<std::byte> out, SendMode smode,
                             ReceiveMode rmode) {
  node().charge_cpu(endpoint_->costs().unpack);
  stats_.switching.unpack_cpu_ticks +=
      static_cast<std::uint64_t>(endpoint_->costs().unpack);
  const bool obs_on = obs_switch_on();

  // Mirror of the send-side striping decision.
  if (rails_ != nullptr && !striping_ && smode == SendMode::kCheaper &&
      rmode == ReceiveMode::kCheaper && out.size() >= rails_->threshold()) {
    if (recv_bmm_ != nullptr) {
      if (obs_on) {
        obs::trace_event(obs::Category::kSwitch, "switch.checkout",
                         "stripe");
      }
      recv_bmm_->checkout(*this, *recv_tm_);
      recv_tm_ = nullptr;
      recv_bmm_ = nullptr;
    }
    striping_ = true;
    rails_->stripe_recv(*this, out);
    striping_ = false;
    return;
  }

  // Mirror of the send-side Switch: the same pure selection functions run
  // on the same (mandatorily symmetric) arguments, so the TM sequence
  // matches the sender's without any mode information on the wire. The
  // dispatch table replays the same resolved decisions.
  Tm* tm;
  BmmKind kind;
  RecvBmm* bmm;
  TmCounters* counters;
  if (DispatchEntry* entry = dispatch_entry(out.size(), smode, rmode)) {
    ++stats_.switching.fast_selects;
    if (entry->recv_bmm == nullptr) {
      entry->recv_bmm = recv_bmm_for(entry->tm, entry->kind);
      entry->received = &stats_.received_by_tm[std::string(entry->tm->name())];
    }
    tm = entry->tm;
    kind = entry->kind;
    bmm = entry->recv_bmm;
    counters = entry->received;
  } else {
    ++stats_.switching.legacy_selects;
    tm = &endpoint_->pmm().select_tm(out.size(), smode, rmode);
    kind = select_bmm_kind(*tm, smode, rmode);
    bmm = recv_bmm_for(tm, kind);
    counters = &stats_.received_by_tm[std::string(tm->name())];
  }
  if (obs_on) {
    obs::trace_event(obs::Category::kSwitch, "switch.tm_replay",
                     tm->name().data(), out.size(),
                     static_cast<std::uint64_t>(kind));
  }
  if (bmm != recv_bmm_ || tm != recv_tm_) {
    if (recv_bmm_ != nullptr) {
      if (obs_on) {
        obs::trace_event(obs::Category::kSwitch, "switch.checkout",
                         "tm_change");
      }
      recv_bmm_->checkout(*this, *recv_tm_);
    }
    recv_tm_ = tm;
    recv_bmm_ = bmm;
  }
  ++counters->blocks;
  counters->bytes += out.size();
  bmm->unpack(*this, *tm, out, smode, rmode);
}

bool Connection::unpack_borrow(std::size_t len, SendMode smode,
                               ReceiveMode rmode,
                               std::vector<BorrowedBlock>& out) {
  MAD2_CHECK(unpacking_, "unpack outside begin_unpacking/end_unpacking");
  // Paranoid channels frame every block with a check block; keep that
  // path on the plain copying unpack.
  if (endpoint_->channel().def().paranoid) return false;
  // A striping-eligible block is scattered across the rails straight into
  // user memory; it cannot be lent as protocol-buffer views. The copying
  // fallback the caller performs is the striped (zero-copy-landing) path.
  if (rails_ != nullptr && smode == SendMode::kCheaper &&
      rmode == ReceiveMode::kCheaper && len >= rails_->threshold()) {
    return false;
  }
  // Replay the Switch decision *before* touching any state, so a refusal
  // leaves the stream exactly where a copying unpack expects it.
  const SwitchDecision decision = probe_switch(len, smode, rmode);
  Tm& tm = *decision.tm;
  const BmmKind kind = decision.kind;
  // A refused borrow falls back to a copying unpack, which re-runs the
  // selection and counts it there; counting the probe too would tally
  // the same block twice. Only an accepted borrow owns its count.
  if (kind != BmmKind::kStaticCopy) return false;
  if (decision.from_table) {
    ++stats_.switching.fast_selects;
  } else {
    ++stats_.switching.legacy_selects;
  }

  node().charge_cpu(endpoint_->costs().unpack);
  stats_.switching.unpack_cpu_ticks +=
      static_cast<std::uint64_t>(endpoint_->costs().unpack);
  RecvBmm* bmm = recv_bmm_for(&tm, kind);
  if (bmm != recv_bmm_ || &tm != recv_tm_) {
    if (recv_bmm_ != nullptr) recv_bmm_->checkout(*this, *recv_tm_);
    recv_tm_ = &tm;
    recv_bmm_ = bmm;
  }
  TmCounters& counters = stats_.received_by_tm[std::string(tm.name())];
  ++counters.blocks;
  counters.bytes += len;
  const bool borrowed = bmm->unpack_borrow(*this, tm, len, rmode, out);
  MAD2_CHECK(borrowed, "static-copy BMM refused a borrow");
  return true;
}

void Connection::end_unpacking() {
  MAD2_CHECK(unpacking_, "end_unpacking without begin_unpacking");
  const bool obs_on = obs_switch_on();
  if (recv_bmm_ != nullptr) {
    if (obs_on) {
      obs::trace_event(obs::Category::kSwitch, "switch.checkout",
                       "end_unpacking");
    }
    recv_bmm_->checkout(*this, *recv_tm_);
  }
  recv_tm_ = nullptr;
  recv_bmm_ = nullptr;
  unpacking_ = false;
  if (endpoint_->active_incoming_ == this) {
    endpoint_->active_incoming_ = nullptr;
  }
  if (obs_hist_unpack_ != nullptr) {
    const sim::Time now = obs_now();
    obs_hist_unpack_->record(now - obs_unpack_start_);
    // Match this message to the sender's begin_packing stamp (FIFO per
    // flow); a miss just means sender-side metrics were off.
    sim::Time sent = 0;
    if (obs_registry_->pop_stamp(obs_flow_rx_, &sent)) {
      obs_hist_e2e_->record(now - sent);
    }
  }
  if (obs_on) {
    obs::recorder()->record(obs::Category::kSwitch, "msg.unpack", nullptr,
                            obs_unpack_start_,
                            obs_now() - obs_unpack_start_,
                            stats_.messages_received, remote_);
  }
  node().charge_cpu(endpoint_->costs().end_unpacking);
  stats_.switching.unpack_cpu_ticks +=
      static_cast<std::uint64_t>(endpoint_->costs().end_unpacking);
}

}  // namespace mad2::mad
