#include "mad/congestion.hpp"

#include <algorithm>
#include <cmath>

#include "util/debug_hook.hpp"

namespace mad2::mad {

double seed_window(const CongestionConfig& config, double bandwidth_mbs,
                   std::size_t mtu) {
  // Bandwidth-delay product with an assumed 1 ms round trip: bytes in
  // flight to keep the pipe full, expressed in MTU-sized packets. The
  // assumption only sets the starting point; the delay feedback takes
  // over from the first delivered packet.
  const double bdp_bytes = bandwidth_mbs * 1e6 * 1e-3;
  double packets = bdp_bytes / static_cast<double>(mtu);
  packets = std::max(packets, static_cast<double>(config.min_window));
  packets = std::min(packets, static_cast<double>(config.max_window));
  return packets;
}

// -------------------------------------------------------- CongestionWindow ---

CongestionWindow::CongestionWindow(sim::Simulator* simulator,
                                   const CongestionConfig& config,
                                   double initial)
    : simulator_(simulator),
      config_(config),
      cwnd_(initial),
      room_(simulator) {
  MAD2_CHECK(config_.min_window >= 1, "min_window must be at least 1");
  MAD2_CHECK(config_.max_window >= config_.min_window,
             "max_window below min_window");
  // Direct construction bypasses the config parser's range checks; keep
  // the starting window inside the configured bounds regardless.
  cwnd_ = std::clamp(cwnd_, static_cast<double>(config_.min_window),
                     static_cast<double>(config_.max_window));
}

std::size_t CongestionWindow::window_floor() const {
  const auto floor = static_cast<std::size_t>(cwnd_);
  return floor < 1 ? 1 : floor;
}

void CongestionWindow::before_send() {
  while (in_flight_ >= window_floor()) room_.wait();
  ++in_flight_;
}

void CongestionWindow::on_delivered(sim::Duration delay) {
  MAD2_CHECK(in_flight_ > 0, "delivery without a packet in flight");
  --in_flight_;
  ++delivered_;

  if (delay < 0) delay = 0;
  if (base_rtt_ == 0 || delay < base_rtt_) base_rtt_ = delay;
  if (srtt_ == 0) {
    srtt_ = delay;
  } else {
    srtt_ += static_cast<sim::Duration>(
        config_.rtt_alpha * static_cast<double>(delay - srtt_));
  }

  const double floor = static_cast<double>(base_rtt_);
  const bool congested =
      static_cast<double>(srtt_) > config_.backlog_factor * floor &&
      base_rtt_ > 0;
  if (congested) {
    // Multiplicative decrease, at most once per round trip of the path
    // (the observed delay floor) so one burst of delayed packets does
    // not collapse the window to the minimum in a single round. The
    // floor — not the smoothed delay — sets the pace on purpose: under
    // a standing queue srtt inflates with the very backlog the decrease
    // must drain, and pacing by it would slow the backoff exactly when
    // congestion is worst.
    const sim::Time now = simulator_->now();
    if (now >= next_decrease_) {
      cwnd_ = std::max(cwnd_ * config_.decrease,
                       static_cast<double>(config_.min_window));
      next_decrease_ = now + std::max<sim::Duration>(base_rtt_, 1);
      ++decreases_;
    }
  } else {
    // Additive increase: +gain packets per delivered window.
    cwnd_ = std::min(cwnd_ + config_.gain / std::max(cwnd_, 1.0),
                     static_cast<double>(config_.max_window));
  }
  room_.notify_all();
}

// ----------------------------------------------------------------- DrrGate ---

DrrGate::DrrGate(sim::Simulator* simulator, std::size_t quantum)
    : quantum_(quantum), granted_(simulator) {
  MAD2_CHECK(quantum_ > 0, "DRR quantum must be positive");
}

void DrrGate::acquire(std::uint64_t flow, std::size_t bytes) {
  Request request;
  request.bytes = bytes;
  FlowState& state = flows_[flow];
  if (state.requests.empty()) {
    // DRR+-style two-class reactivation: a weighted (> 1) flow waking
    // from idle joins the round at the head with a fresh quantum, so a
    // flow that keeps no standing backlog waits for at most the grant
    // in service. Weight-1 flows rejoin at the tail with no credit —
    // expediting every reactivation would let churning flows leapfrog
    // the head indefinitely (see FairPacketQueue::send).
    if (state.weight > 1.0) {
      active_.push_front(flow);
      state.deficit = scaled_quantum(state.weight);
    } else {
      active_.push_back(flow);
    }
  }
  state.requests.push_back(&request);
  pump();
  while (!request.granted) granted_.wait();
}

void DrrGate::set_weight(std::uint64_t flow, double weight) {
  MAD2_CHECK(weight > 0.0, "DRR flow weight must be positive");
  flows_[flow].weight = weight;
}

std::size_t DrrGate::scaled_quantum(double weight) const {
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(quantum_) * weight);
  return scaled < 1 ? 1 : scaled;
}

void DrrGate::release() {
  MAD2_CHECK(busy_, "DrrGate::release without an outstanding grant");
  busy_ = false;
  pump();
}

void DrrGate::pump() {
  if (busy_) return;
  while (!active_.empty()) {
    const std::uint64_t flow = active_.front();
    FlowState& state = flows_.at(flow);
    if (state.requests.empty()) {
      // Fully drained flow: drop it from the round and reset its credit
      // (an idle flow must not bank deficit against future rounds).
      active_.pop_front();
      state.deficit = 0;
      continue;
    }
    Request* head = state.requests.front();
    const std::size_t cost = std::max<std::size_t>(head->bytes, 1);
    if (state.deficit < cost) {
      state.deficit += scaled_quantum(state.weight);
      active_.pop_front();
      active_.push_back(flow);
      continue;
    }
    state.deficit -= cost;
    state.requests.pop_front();
    if (state.requests.empty()) {
      active_.pop_front();
      state.deficit = 0;
    }
    head->granted = true;
    busy_ = true;
    FlowStats& stats = flows_stats_[flow];
    ++stats.grants;
    stats.bytes += cost;
    granted_.notify_all();
    return;
  }
}

}  // namespace mad2::mad
