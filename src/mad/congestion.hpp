// End-to-end congestion control and weighted-fair flow scheduling.
//
// The paper's flow control is per-link (credits in BIP, bounded windows in
// the reliable shim) — nothing limits how much traffic *converges* on a
// shared choke point. Under many-to-one (incast) patterns the gateways of
// a virtual channel and the lanes of a rail set build queues bounded only
// by sender count, and a latency-sensitive flow stalls behind every bulk
// flow's backlog (head-of-line blocking; the paper's stated future work:
// "some sophisticated bandwidth control mechanism is needed to regulate
// the incoming communication flow on gateways").
//
// This header adds the two mechanisms that close the loop:
//
//  - CongestionWindow: a per-flow end-to-end window with delay-driven
//    AIMD. Each data packet carries its send timestamp; the receiver
//    computes the end-to-end delay on delivery and feeds it back into the
//    sender's window (fibers share memory, so "feedback" is a function
//    call — the simulated analogue of the shim's seq/ack stamps carrying
//    the RTT signal, see net/reliable.hpp RTT sampling). While the
//    smoothed delay stays near the observed floor the window grows
//    additively; when it exceeds backlog_factor * floor the window is cut
//    multiplicatively, at most once per smoothed-RTT. Windows are seeded
//    from the driver's bandwidth self-report (Pmm::bandwidth_hint_mbs),
//    i.e. a bandwidth-delay product with an assumed millisecond RTT.
//
//  - DrrGate: a deficit-round-robin admission arbiter for a choke point
//    shared by several flows (rail lanes toward one destination; gateway
//    forwarding queues use the packet-level variant in fwd/fair_queue).
//    Each flow accumulates `quantum` bytes of deficit per scheduling
//    round and is granted while its deficit covers the request, so the
//    long-run share of every backlogged flow converges to 1/n regardless
//    of request sizes — no flow starves behind another's backlog.
//
// Everything here is deterministic: scheduling order derives from
// std::map/deque iteration and fiber wake order only, so traced
// virtual-time runs and madcheck explore schedules replay exactly.
// EXPRESS/short messages never pass through either mechanism — the fast
// path stays untouched (LCI's lesson: keep control logic off the
// short-message path).
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace mad2::mad {

/// The `congestion` config stanza (see mad/config_parser.hpp). Presence
/// of the stanza enables the machinery; everything defaults to off so
/// existing sessions and baselines are byte-for-byte unchanged.
struct CongestionConfig {
  bool enabled = false;
  /// Initial window in packets; 0 derives a bandwidth-delay product from
  /// the flow's driver bandwidth hint (see seed_window).
  std::size_t init_window = 0;
  /// Window clamp, in packets. min_window >= 1 keeps every flow live.
  std::size_t min_window = 1;
  std::size_t max_window = 64;
  /// Additive increase per delivered window's worth of packets.
  double gain = 1.0;
  /// Multiplicative decrease factor applied on congestion, in (0, 1).
  double decrease = 0.5;
  /// Congestion threshold: smoothed delay > backlog_factor * observed
  /// floor means queues are building. Must be > 1.
  double backlog_factor = 2.0;
  /// EWMA weight of a new delay sample in the smoothed delay.
  double rtt_alpha = 0.125;
  /// DRR deficit replenished per scheduling round, bytes.
  std::size_t quantum = 16 * 1024;
  /// Gateway forwarding-queue capacity in packets (replaces the
  /// pipeline_depth-bounded queue when congestion control is on).
  std::size_t gateway_queue = 16;
};

/// Window seed: the bandwidth-delay product of `bandwidth_mbs` with an
/// assumed 1 ms round trip, in `mtu`-sized packets, clamped to the
/// configured [min_window, max_window].
[[nodiscard]] double seed_window(const CongestionConfig& config,
                                 double bandwidth_mbs, std::size_t mtu);

/// Per-flow end-to-end congestion window. before_send() blocks the
/// sending fiber while a full window is in flight; on_delivered(delay)
/// is the feedback edge: it retires one packet, folds the delay sample
/// into the smoothed estimate, and adapts the window (AIMD).
class CongestionWindow {
 public:
  CongestionWindow(sim::Simulator* simulator, const CongestionConfig& config,
                   double initial);

  /// Block until the window has room, then account one packet in flight.
  void before_send();
  /// Feedback for one delivered packet that spent `delay` end to end.
  void on_delivered(sim::Duration delay);

  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }
  [[nodiscard]] sim::Duration srtt() const { return srtt_; }
  [[nodiscard]] sim::Duration base_rtt() const { return base_rtt_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t decreases() const { return decreases_; }

 private:
  [[nodiscard]] std::size_t window_floor() const;

  sim::Simulator* simulator_;
  CongestionConfig config_;
  double cwnd_;
  std::size_t in_flight_ = 0;
  sim::Duration srtt_ = 0;      // 0 until the first sample
  sim::Duration base_rtt_ = 0;  // observed delay floor
  sim::Time next_decrease_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t decreases_ = 0;
  sim::WaitQueue room_;
};

/// Deficit-round-robin admission gate for one shared choke point.
/// acquire(flow, bytes) blocks until the gate grants this flow's turn;
/// exactly one grant is outstanding at a time and release() passes the
/// gate to the next flow in deficit order.
class DrrGate {
 public:
  DrrGate(sim::Simulator* simulator, std::size_t quantum);

  void acquire(std::uint64_t flow, std::size_t bytes);
  void release();

  /// Weighted-fair share: a flow's deficit replenishes by quantum*weight
  /// per round, so backlogged flows split the lane in weight proportion.
  /// Weight 1 is the default; must be positive.
  void set_weight(std::uint64_t flow, double weight);

  struct FlowStats {
    std::uint64_t grants = 0;
    std::uint64_t bytes = 0;
  };
  [[nodiscard]] const std::map<std::uint64_t, FlowStats>& flow_stats()
      const {
    return flows_stats_;
  }

 private:
  struct Request {
    std::size_t bytes = 0;
    bool granted = false;
  };
  struct FlowState {
    std::size_t deficit = 0;
    double weight = 1.0;
    std::deque<Request*> requests;
  };

  /// Grant the next request in DRR order, if the gate is free.
  void pump();
  [[nodiscard]] std::size_t scaled_quantum(double weight) const;

  std::size_t quantum_;
  bool busy_ = false;
  std::map<std::uint64_t, FlowState> flows_;
  std::map<std::uint64_t, FlowStats> flows_stats_;
  std::deque<std::uint64_t> active_;  // flows with queued requests
  sim::WaitQueue granted_;
};

}  // namespace mad2::mad
