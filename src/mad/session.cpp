#include "mad/session.hpp"

#include <algorithm>
#include <cstdio>

#include "mad/pmm_factory.hpp"
#include "obs/span_weaver.hpp"
#include "util/log.hpp"

namespace mad2::mad {

std::string_view to_string(NetworkKind kind) {
  switch (kind) {
    case NetworkKind::kBip:
      return "bip";
    case NetworkKind::kSisci:
      return "sisci";
    case NetworkKind::kTcp:
      return "tcp";
    case NetworkKind::kVia:
      return "via";
    case NetworkKind::kSbp:
      return "sbp";
    case NetworkKind::kIb:
      return "ib";
    case NetworkKind::kCustom:
      return "custom";
  }
  return "?";
}

std::string_view to_string(FailureDomain domain) {
  switch (domain) {
    case FailureDomain::kUnknown:
      return "unknown";
    case FailureDomain::kRail:
      return "rail";
    case FailureDomain::kHop:
      return "hop";
    case FailureDomain::kNode:
      return "node";
  }
  return "?";
}

std::uint32_t NetworkInstance::port(std::uint32_t node) const {
  auto it = port_of_node.find(node);
  MAD2_CHECK(it != port_of_node.end(), "node not attached to this network");
  return it->second;
}

// ------------------------------------------------------- ChannelEndpoint ---

ChannelEndpoint::ChannelEndpoint(Session* session, Channel* channel,
                                 std::uint32_t local)
    : session_(session), channel_(channel), local_(local) {
  pmm_ = make_pmm(*this);
  for (std::uint32_t peer : channel_->nodes()) {
    if (peer == local_) continue;
    connections_.emplace(
        peer, std::make_unique<Connection>(this, peer,
                                           pmm_->make_conn_state(peer)));
  }
}

ChannelEndpoint::~ChannelEndpoint() = default;

hw::Node& ChannelEndpoint::node() { return session_->node(local_); }

const MadCosts& ChannelEndpoint::costs() const {
  return session_->config().costs;
}

TrafficStats ChannelEndpoint::stats() const {
  TrafficStats total;
  for (const auto& [remote, connection] : connections_) {
    total.merge(connection->stats());
  }
  // Link-level ack/retransmit work under this endpoint, when the channel's
  // network runs over a faulty fabric. The shim sits below the channel
  // mux, so channels sharing a TCP port see the same numbers.
  NetworkInstance& network = channel_->network();
  if (network.tcp && network.tcp->reliable() != nullptr &&
      network.has_node(local_)) {
    const net::ReliabilityCounters& link =
        network.tcp->reliable()->endpoint(network.port(local_)).counters();
    total.reliability.merge(link);
    // Identity tag so merging endpoints that share this port dedupes
    // instead of double-counting (see TrafficStats::reliability_by_link).
    total.reliability_by_link[network.def.name + ":" +
                              std::to_string(network.port(local_))] = link;
  }
  // Host-memory traffic of this endpoint's node (node-level, see
  // TrafficStats::mem). Tagged by node id for the same dedupe-on-merge.
  total.mem = session_->node(local_).mem();
  total.mem_by_node[local_] = total.mem;
  return total;
}

Connection& ChannelEndpoint::connection(std::uint32_t remote) {
  auto it = connections_.find(remote);
  MAD2_CHECK(it != connections_.end(),
             "no connection to that node on this channel");
  return *it->second;
}

Connection& ChannelEndpoint::begin_packing(std::uint32_t remote) {
  Connection& conn = connection(remote);
  conn.begin_packing_message();
  return conn;
}

Connection& ChannelEndpoint::begin_unpacking() {
  MAD2_CHECK(active_incoming_ == nullptr,
             "begin_unpacking with an incoming message already open");
  const std::uint32_t src = pmm_->wait_incoming();
  Connection& conn = connection(src);
  conn.begin_unpacking_message();
  active_incoming_ = &conn;
  return conn;
}

// ---------------------------------------------------------------- Channel ---

Channel::Channel(Session* session, std::uint32_t id, ChannelDef def,
                 NetworkInstance* network)
    : session_(session), id_(id), def_(std::move(def)), network_(network) {
  for (std::uint32_t node : network_->def.nodes) {
    endpoints_.emplace(node,
                       std::make_unique<ChannelEndpoint>(session, this, node));
  }
}

Channel::~Channel() = default;

ChannelEndpoint& Channel::endpoint(std::uint32_t node) {
  auto it = endpoints_.find(node);
  MAD2_CHECK(it != endpoints_.end(), "node is not a member of this channel");
  return *it->second;
}

// ------------------------------------------------------------- NodeRuntime ---

ChannelEndpoint& NodeRuntime::channel(const std::string& name) {
  return session_->endpoint(name, rank_);
}

hw::Node& NodeRuntime::node() { return session_->node(rank_); }

sim::Simulator& NodeRuntime::simulator() { return session_->simulator(); }

// ----------------------------------------------------------------- Session ---

Session::Session(SessionConfig config) : config_(std::move(config)) {
  MAD2_CHECK(config_.node_count > 0, "session needs at least one node");
  // madtrace enablement: the MAD2_TRACE environment wins (process-wide
  // recorder, survives this session for failure dumps); otherwise a
  // `trace` config stanza installs a session-lifetime recorder.
  obs::ensure_env_recorder();
  if (config_.trace.has_value() && obs::recorder() == nullptr) {
    trace_recorder_ = std::make_unique<obs::TraceRecorder>(*config_.trace);
    obs::install_recorder(trace_recorder_.get());
    if (obs::metrics() == nullptr) {
      trace_metrics_ = std::make_unique<obs::MetricsRegistry>();
      obs::install_metrics(trace_metrics_.get());
    }
  }
  for (std::uint32_t i = 0; i < config_.node_count; ++i) {
    nodes_.push_back(std::make_unique<hw::Node>(
        &simulator_, i, "node" + std::to_string(i), config_.host));
  }
  hostdb_.reset(config_.node_count);

  for (const NetworkDef& def : config_.networks) {
    auto instance = std::make_unique<NetworkInstance>();
    instance->def = def;
    std::vector<hw::Node*> members;
    for (std::uint32_t node : def.nodes) {
      MAD2_CHECK(node < nodes_.size(), "network references unknown node");
      instance->port_of_node[node] =
          static_cast<std::uint32_t>(members.size());
      instance->node_of_port.push_back(node);
      hostdb_.add_adapter(node, def.name);
      members.push_back(nodes_[node].get());
    }
    switch (def.kind) {
      case NetworkKind::kBip:
        instance->bip = std::make_unique<net::BipNetwork>(
            &simulator_, members,
            def.bip_params.value_or(net::BipParams::myrinet_lanai43()));
        break;
      case NetworkKind::kSisci:
        instance->sci = std::make_unique<net::SciNetwork>(
            &simulator_, members,
            def.sci_params.value_or(net::SciParams::dolphin_d310()));
        break;
      case NetworkKind::kTcp:
        instance->tcp = std::make_unique<net::TcpNetwork>(
            &simulator_, members,
            def.tcp_params.value_or(net::TcpParams::fast_ethernet()));
        // A faulty fabric can give up on a link. Triage in
        // route_network_failure decides whether a rail set or a resilient
        // forwarding layer absorbs the failure (the session runs on
        // degraded) or the session fails cleanly instead of deadlocking
        // the stuck fibers. Ports map back to global node ids so the
        // failure carries its endpoints.
        instance->tcp->set_link_error_handler(
            [this, raw = instance.get()](std::uint32_t a, std::uint32_t b,
                                         const Status& status) {
              NetworkFailure failure;
              failure.network = raw;
              failure.status = status;
              if (a < raw->node_of_port.size()) {
                failure.src_node = raw->node_of_port[a];
              }
              if (b < raw->node_of_port.size()) {
                failure.dst_node = raw->node_of_port[b];
              }
              route_network_failure(failure);
            });
        break;
      case NetworkKind::kVia:
        instance->via = std::make_unique<net::ViaNetwork>(
            &simulator_, members,
            def.via_params.value_or(net::ViaParams::generic_nic()));
        break;
      case NetworkKind::kSbp:
        instance->sbp = std::make_unique<net::SbpNetwork>(
            &simulator_, members,
            def.sbp_params.value_or(net::SbpParams::fast_ethernet()));
        break;
      case NetworkKind::kIb:
        instance->ib = std::make_unique<net::IbNetwork>(
            &simulator_, members,
            def.ib_params.value_or(net::IbParams::mellanox_like()));
        // Same triage as TCP: an HCA gives up on a peer (work-request
        // timeout, scripted fault) and the session decides whether a
        // rail set absorbs it or the run fails cleanly.
        instance->ib->set_link_error_handler(
            [this, raw = instance.get()](std::uint32_t a, std::uint32_t b,
                                         const Status& status) {
              NetworkFailure failure;
              failure.network = raw;
              failure.status = status;
              if (a < raw->node_of_port.size()) {
                failure.src_node = raw->node_of_port[a];
              }
              if (b < raw->node_of_port.size()) {
                failure.dst_node = raw->node_of_port[b];
              }
              route_network_failure(failure);
            });
        break;
      case NetworkKind::kCustom:
        MAD2_CHECK(static_cast<bool>(def.custom_pmm),
                   "custom network without a custom_pmm factory");
        break;
    }
    networks_.push_back(std::move(instance));
  }

  std::uint32_t channel_id = 0;
  for (const ChannelDef& def : config_.channels) {
    NetworkInstance* net = &network(def.network);
    channels_.push_back(
        std::make_unique<Channel>(this, channel_id++, def, net));
  }

  for (const RailSetDef& def : config_.rail_sets) {
    for (const auto& existing : rail_sets_) {
      MAD2_CHECK(existing->name() != def.name, "duplicate rail set name");
      for (const std::string& channel : def.channels) {
        for (const std::string& taken : existing->def().channels) {
          MAD2_CHECK(channel != taken,
                     "channel is a member of two rail sets");
        }
      }
    }
    rail_sets_.push_back(std::make_unique<RailSet>(this, def));
  }

  // Second phase: cross-node handle resolution (see Pmm::finish_setup).
  for (auto& channel : channels_) {
    for (std::uint32_t node : channel->nodes()) {
      channel->endpoint(node).pmm().finish_setup();
    }
  }
  // Rail sets bind last: their lanes drive fully-resolved protocol state.
  for (auto& rail_set : rail_sets_) {
    rail_set->finish_setup();
  }
}

Session::~Session() {
  if (trace_recorder_ != nullptr) {
    obs::uninstall_recorder(trace_recorder_.get());
  }
  if (trace_metrics_ != nullptr) {
    obs::uninstall_metrics(trace_metrics_.get());
  }
}

hw::Node& Session::node(std::uint32_t id) {
  MAD2_CHECK(id < nodes_.size(), "unknown node id");
  return *nodes_[id];
}

Channel& Session::channel(const std::string& name) {
  for (auto& channel : channels_) {
    if (channel->name() == name) return *channel;
  }
  MAD2_CHECK(false, "unknown channel name");
}

ChannelEndpoint& Session::endpoint(const std::string& channel_name,
                                   std::uint32_t node) {
  return channel(channel_name).endpoint(node);
}

NetworkInstance& Session::network(const std::string& name) {
  for (auto& network : networks_) {
    if (network->def.name == name) return *network;
  }
  MAD2_CHECK(false, "unknown network name");
}

RailSet& Session::rail_set(const std::string& name) {
  for (auto& rail_set : rail_sets_) {
    if (rail_set->name() == name) return *rail_set;
  }
  MAD2_CHECK(false, "unknown rail set name");
}

ProgressEngine* Session::progress_engine(std::uint32_t node) {
  if (!config_.fastpath.has_value()) return nullptr;
  MAD2_CHECK(node < nodes_.size(), "unknown node id");
  if (progress_.empty()) progress_.resize(nodes_.size());
  if (progress_[node] == nullptr) {
    progress_[node] = std::make_unique<ProgressEngine>(
        &simulator_, "node" + std::to_string(node));
    progress_[node]->start();
  }
  return progress_[node].get();
}

std::uint64_t Session::add_failure_listener(FailureListener listener) {
  const std::uint64_t id = next_listener_id_++;
  failure_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void Session::remove_failure_listener(std::uint64_t id) {
  for (auto it = failure_listeners_.begin(); it != failure_listeners_.end();
       ++it) {
    if (it->first == id) {
      failure_listeners_.erase(it);
      return;
    }
  }
}

FailureDomain Session::route_network_failure(const NetworkFailure& failure) {
  MAD2_CHECK(!failure.status.is_ok(),
             "route_network_failure with an OK status");
  // A failure is identified by its (network, src, dst) link; routing it is
  // idempotent — a double report (several streams noticing the same dead
  // link, or a misbehaving caller) replays the recorded verdict without
  // re-triggering rail or hop repairs.
  const auto key =
      std::make_tuple(failure.network, failure.src_node, failure.dst_node);
  if (const auto it = routed_failures_.find(key);
      it != routed_failures_.end()) {
    return it->second;
  }
  FailureDomain domain = FailureDomain::kUnknown;
  for (auto& rail_set : rail_sets_) {
    if (rail_set->on_network_failed(failure.network, failure.status)) {
      domain = FailureDomain::kRail;
      break;
    }
  }
  if (domain == FailureDomain::kUnknown) {
    for (auto& [id, listener] : failure_listeners_) {
      const FailureDomain claimed = listener(failure);
      if (claimed != FailureDomain::kUnknown) {
        domain = claimed;
        break;
      }
    }
  }
  if (domain == FailureDomain::kUnknown &&
      failure.dst_node != NetworkFailure::kNoNode) {
    // Nobody could route around it: record the death in the directory so
    // post-mortems see which node took the session down.
    hostdb_.mark_dead(failure.dst_node);
    domain = FailureDomain::kNode;
  }
  routed_failures_[key] = domain;
  if (domain == FailureDomain::kUnknown || domain == FailureDomain::kNode) {
    fail(failure.status);
  }
  return domain;
}

void Session::spawn(std::uint32_t node, std::string name,
                    std::function<void(NodeRuntime&)> body) {
  MAD2_CHECK(node < nodes_.size(), "spawn on unknown node");
  simulator_.spawn(std::move(name),
                   [this, node, body = std::move(body)]() mutable {
                     NodeRuntime runtime(this, node);
                     body(runtime);
                   });
}

void Session::fail(const Status& status) {
  MAD2_CHECK(!status.is_ok(), "Session::fail with an OK status");
  if (!health_.is_ok()) return;  // first failure wins
  health_ = status;
  simulator_.stop();
}

void Session::export_metrics(obs::MetricsRegistry& registry) {
  const auto u = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };
  // Flight-recorder truncation: how many trace events the ring already
  // overwrote. A nonzero value means dumps and weaved spans are partial.
  if (const obs::TraceRecorder* rec = obs::recorder(); rec != nullptr) {
    registry.set_value("trace.dropped_events", u(rec->dropped_events()));
  }
  // Channel-level traffic: TM usage and rail activity, merged (and
  // identity-deduped) across the channel's endpoints.
  for (auto& channel : channels_) {
    TrafficStats total;
    for (std::uint32_t node : channel->nodes()) {
      total.merge(channel->endpoint(node).stats());
    }
    const std::string prefix = "stats." + channel->name() + ".";
    registry.set_value(prefix + "messages_sent", u(total.messages_sent));
    registry.set_value(prefix + "messages_received",
                       u(total.messages_received));
    registry.set_value(prefix + "switch.fast_selects",
                       u(total.switching.fast_selects));
    registry.set_value(prefix + "switch.legacy_selects",
                       u(total.switching.legacy_selects));
    registry.set_value(prefix + "switch.pack_cpu_ticks",
                       u(total.switching.pack_cpu_ticks));
    registry.set_value(prefix + "switch.unpack_cpu_ticks",
                       u(total.switching.unpack_cpu_ticks));
    for (const auto& [tm, counters] : total.sent_by_tm) {
      registry.set_value(prefix + "tx." + tm + ".blocks",
                         u(counters.blocks));
      registry.set_value(prefix + "tx." + tm + ".bytes", u(counters.bytes));
    }
    for (const auto& [tm, counters] : total.received_by_tm) {
      registry.set_value(prefix + "rx." + tm + ".blocks",
                         u(counters.blocks));
      registry.set_value(prefix + "rx." + tm + ".bytes", u(counters.bytes));
    }
    for (const auto& [rail, counters] : total.rails) {
      registry.set_value(prefix + "rail." + rail + ".bytes",
                         u(counters.bytes));
      registry.set_value(prefix + "rail." + rail + ".segments",
                         u(counters.segments));
      registry.set_value(prefix + "rail." + rail + ".resubmits",
                         u(counters.resubmits));
    }
  }
  // Node-level memory traffic, once per node regardless of how many
  // channel endpoints live on it.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const hw::MemCounters mem = nodes_[i]->mem();
    const std::string prefix = "mem.node" + std::to_string(i) + ".";
    registry.set_value(prefix + "memcpy_bytes", u(mem.memcpy_bytes));
    registry.set_value(prefix + "allocs", u(mem.alloc_count));
    registry.set_value(prefix + "pool_recycles", u(mem.pool_recycle_count));
    registry.set_value(prefix + "pinned_bytes", u(mem.pinned_bytes));
    registry.set_value(prefix + "regs", u(mem.reg_count));
    registry.set_value(prefix + "deregs", u(mem.dereg_count));
  }
  // Progress-engine activity (fastpath sessions only).
  for (std::size_t i = 0; i < progress_.size(); ++i) {
    if (progress_[i] == nullptr) continue;
    const ProgressCounters& c = progress_[i]->counters();
    const std::string prefix = "progress.node" + std::to_string(i) + ".";
    registry.set_value(prefix + "ticks", u(c.ticks));
    registry.set_value(prefix + "doorbells", u(c.doorbells));
    registry.set_value(prefix + "flushes", u(c.flushes));
  }
  // IB verbs activity plus registration-cache effectiveness, once per
  // (network, port).
  for (auto& network : networks_) {
    if (network->ib == nullptr) continue;
    for (const auto& [node, port_index] : network->port_of_node) {
      net::IbPort& port = network->ib->port(port_index);
      const net::IbCounters& c = port.counters();
      const net::IbRegCacheStats& rc = port.reg_cache().stats();
      const std::string prefix =
          "ib." + network->def.name + ":" + std::to_string(port_index) + ".";
      registry.set_value(prefix + "send_wrs", u(c.send_wrs));
      registry.set_value(prefix + "recv_posts", u(c.recv_posts));
      registry.set_value(prefix + "write_wrs", u(c.write_wrs));
      registry.set_value(prefix + "read_wrs", u(c.read_wrs));
      registry.set_value(prefix + "cqes", u(c.cqes));
      registry.set_value(prefix + "cq_polls", u(c.cq_polls));
      registry.set_value(prefix + "regcache.hits", u(rc.hits));
      registry.set_value(prefix + "regcache.misses", u(rc.misses));
      registry.set_value(prefix + "regcache.evictions", u(rc.evictions));
      registry.set_value(prefix + "regcache.invalidations",
                         u(rc.invalidations));
      registry.set_value(prefix + "regcache.merges", u(rc.merges));
    }
  }
  // Link-level reliable-shim work, once per (network, port).
  for (auto& network : networks_) {
    if (network->tcp == nullptr || network->tcp->reliable() == nullptr) {
      continue;
    }
    for (const auto& [node, port] : network->port_of_node) {
      const net::ReliabilityCounters& c =
          network->tcp->reliable()->endpoint(port).counters();
      const std::string prefix =
          "rel." + network->def.name + ":" + std::to_string(port) + ".";
      registry.set_value(prefix + "data_frames", u(c.data_frames));
      registry.set_value(prefix + "retransmits", u(c.retransmits));
      registry.set_value(prefix + "acks_sent", u(c.acks_sent));
      registry.set_value(prefix + "dup_frames", u(c.dup_frames));
      registry.set_value(prefix + "corrupt_frames", u(c.corrupt_frames));
      registry.set_value(prefix + "give_ups", u(c.give_ups));
      registry.set_value(prefix + "rtt_samples", u(c.rtt_samples));
      registry.set_value(prefix + "srtt_us",
                         static_cast<std::int64_t>(sim::to_us(c.srtt)));
      registry.set_value(prefix + "min_rtt_us",
                         static_cast<std::int64_t>(sim::to_us(c.min_rtt)));
    }
  }
}

Status Session::run() {
  const Status status = simulator_.run();
  check_slo_rules();
  // A recorded failure explains why the run stopped (stuck fibers are a
  // symptom, not the cause); report it instead.
  if (!health_.is_ok()) return health_;
  return status;
}

void Session::check_slo_rules() {
  if (!config_.trace.has_value() || config_.trace->slo.empty()) return;
  obs::MetricsRegistry* registry = obs::metrics();
  if (registry == nullptr) return;
  for (const obs::SloRule& rule : config_.trace->slo) {
    // A rule covers the Switch's "<channel>.e2e" histogram and any
    // per-flow "<channel>.flow.<src>-<dst>.e2e" overlays; the worst p99
    // across them is what the operator promised to bound.
    const std::string exact = rule.channel + ".e2e";
    const std::string flow_prefix = rule.channel + ".flow.";
    sim::Duration worst = 0;
    for (const auto& [name, histogram] : registry->histograms()) {
      const bool flow_match =
          name.size() > flow_prefix.size() + 4 &&
          name.compare(0, flow_prefix.size(), flow_prefix) == 0 &&
          name.compare(name.size() - 4, 4, ".e2e") == 0;
      if (name != exact && !flow_match) continue;
      if (histogram.count() == 0) continue;
      worst = std::max(worst, histogram.p99());
    }
    if (worst <= rule.p99_us * 1000) continue;
    // Breach: count it, then reuse the invariant-failure dump path so the
    // flight recorder's tail plus trace/metrics JSON land on disk, and
    // pair the raw dump with the weaved cross-node span timeline.
    registry->add_value("slo.breaches", 1);
    char reason[160];
    std::snprintf(reason, sizeof(reason),
                  "slo breach: channel %s e2e p99 %.3fus > %lldus",
                  rule.channel.c_str(), static_cast<double>(worst) / 1000.0,
                  static_cast<long long>(rule.p99_us));
    const std::string before_dump = obs::last_dump_path();
    obs::dump_on_failure(reason);
    // Only weave when this breach actually produced a dump file (a dump
    // directory is configured) — never against a stale earlier path.
    if (const std::string& raw = obs::last_dump_path();
        !raw.empty() && raw != before_dump) {
      std::string weaved = raw;
      if (weaved.size() > 5 &&
          weaved.compare(weaved.size() - 5, 5, ".json") == 0) {
        weaved.resize(weaved.size() - 5);
      }
      obs::write_weaved_dump(weaved + "-weaved.json");
    }
  }
}

}  // namespace mad2::mad
