#include "mad/rail_set.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "mad/connection.hpp"
#include "mad/pmm_ib.hpp"
#include "mad/pmm_tcp.hpp"
#include "mad/session.hpp"
#include "net/tcp.hpp"
#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {

namespace {

std::uint64_t lane_key(std::size_t rail, std::uint32_t src,
                       std::uint32_t dst) {
  return (static_cast<std::uint64_t>(rail) << 42) |
         (static_cast<std::uint64_t>(src) << 21) | dst;
}

}  // namespace

RailSet::RailSet(Session* session, RailSetDef def)
    : session_(session), def_(std::move(def)) {}

RailSet::~RailSet() = default;

double RailSet::weight(std::size_t rail) const {
  MAD2_CHECK(rail < rails_.size(), "rail index out of range");
  return rails_[rail].weight_mbs;
}

bool RailSet::alive(std::size_t rail) const {
  MAD2_CHECK(rail < rails_.size(), "rail index out of range");
  return rails_[rail].alive;
}

void RailSet::validate_members() {
  MAD2_CHECK(def_.channels.size() >= 2,
             "a rail set needs at least two member channels");
  MAD2_CHECK(def_.channels.size() <= 32,
             "at most 32 rails per set (failed-rail mask width)");
  MAD2_CHECK(def_.stripe_threshold > 0,
             "stripe threshold must be positive");
  rails_.clear();
  for (const std::string& name : def_.channels) {
    Channel& channel = session_->channel(name);
    MAD2_CHECK(!channel.def().paranoid,
               "paranoid channels cannot join a rail set (their check "
               "blocks would interleave with striped segments)");
    for (const Rail& existing : rails_) {
      MAD2_CHECK(existing.channel != &channel,
                 "channel listed twice in a rail set");
      MAD2_CHECK(&existing.channel->network() != &channel.network(),
                 "rail channels must use distinct networks (striping over "
                 "one adapter adds no bandwidth)");
      std::vector<std::uint32_t> a = existing.channel->nodes();
      std::vector<std::uint32_t> b = channel.nodes();
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      MAD2_CHECK(a == b,
                 "rail member networks must span the same node set");
    }
    Rail rail;
    rail.channel = &channel;
    rails_.push_back(rail);
  }
}

void RailSet::finish_setup() {
  validate_members();
  // Weighted-fair lane arbitration rides the session-wide congestion
  // stanza (rail sets have no per-set override: the gates protect shared
  // adapters, which are session-scoped resources).
  if (session_->config().congestion.has_value() &&
      session_->config().congestion->enabled) {
    fair_ = true;
    fair_quantum_ = session_->config().congestion->quantum;
  }
  // Seed weights from the drivers' bandwidth self-reports; measured
  // per-segment throughput refines them from the first striped block on.
  for (Rail& rail : rails_) {
    const std::uint32_t first = rail.channel->nodes().front();
    rail.weight_mbs = rail.channel->endpoint(first).pmm().bandwidth_hint_mbs();
  }
  // Bind the primary channel's connections so their Switch consults us.
  Channel* primary = rails_[0].channel;
  for (std::uint32_t node : primary->nodes()) {
    ChannelEndpoint& endpoint = primary->endpoint(node);
    for (auto& [peer, connection] : endpoint.connections_) {
      MAD2_CHECK(connection->rails_ == nullptr,
                 "channel heads more than one rail set");
      connection->rails_ = this;
    }
  }
  // One persistent lane fiber per (secondary rail, directed node pair) and
  // direction — fiber-per-rail, not fiber-per-segment, because fiber
  // stacks are only reclaimed when the simulator dies.
  sim::Simulator& simulator = session_->simulator();
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    for (std::uint32_t src : primary->nodes()) {
      for (std::uint32_t dst : primary->nodes()) {
        if (src == dst) continue;
        const std::string tag = def_.name + "." + std::to_string(i) + "." +
                                std::to_string(src) + "-" +
                                std::to_string(dst);
        auto tx = std::make_unique<sim::BoundedChannel<SendJob>>(&simulator,
                                                                 2);
        auto rx = std::make_unique<sim::BoundedChannel<RecvJob>>(&simulator,
                                                                 2);
        simulator.spawn_daemon(
            "mad.rail.tx." + tag,
            [this, i, jobs = tx.get()] { send_lane(i, jobs); });
        simulator.spawn_daemon(
            "mad.rail.rx." + tag,
            [this, i, jobs = rx.get()] { recv_lane(i, jobs); });
        send_lanes_.emplace(lane_key(i, src, dst), std::move(tx));
        recv_lanes_.emplace(lane_key(i, src, dst), std::move(rx));
      }
    }
  }
}

bool RailSet::on_network_failed(const NetworkInstance* network,
                                const Status& status) {
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    if (&rails_[i].channel->network() == network) {
      mark_rail_dead(i, status);
      return true;
    }
  }
  return false;
}

void RailSet::mark_rail_dead(std::size_t rail, const Status& status) {
  Rail& r = rails_[rail];
  if (!r.alive) return;
  MAD2_TRACE_EVENT(obs::Category::kRail, "rail.dead", nullptr, rail);
  r.alive = false;
  r.weight_mbs = 0.0;
  if (degraded_.is_ok()) degraded_ = status;  // first failure wins
}

void RailSet::observe_throughput(std::size_t rail, std::size_t bytes,
                                 std::int64_t elapsed_ns) {
  if (elapsed_ns <= 0) return;
  Rail& r = rails_[rail];
  if (!r.alive) return;
  // bytes per virtual microsecond == decimal MB/s.
  const double mbs = static_cast<double>(bytes) / sim::to_us(elapsed_ns);
  r.weight_mbs = 0.7 * r.weight_mbs + 0.3 * mbs;
}

std::vector<std::uint64_t> RailSet::plan_split(std::uint64_t total) const {
  std::vector<std::uint64_t> lens(rails_.size(), 0);
  double weight_sum = rails_[0].weight_mbs;
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    if (rails_[i].alive) weight_sum += rails_[i].weight_mbs;
  }
  std::uint64_t assigned = 0;
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    const Rail& rail = rails_[i];
    if (!rail.alive || rail.weight_mbs <= 0.0 || weight_sum <= 0.0) continue;
    std::uint64_t share = static_cast<std::uint64_t>(
        static_cast<double>(total) * rail.weight_mbs / weight_sum);
    share = std::min(share, total - assigned);
    if (share < kMinStripeSegment) continue;
    lens[i] = share;
    assigned += share;
  }
  lens[0] = total - assigned;
  return lens;
}

// ------------------------------------------------------------ scheduling ---

void RailSet::stripe_send(Connection& primary,
                          std::span<const std::byte> data) {
  stripe_send_block(primary, data, primary.local(), primary.remote());
}

void RailSet::stripe_recv(Connection& primary, std::span<std::byte> out) {
  stripe_recv_block(primary, out, primary.remote(), primary.local());
}

void RailSet::stripe_send_block(Connection& primary,
                                std::span<const std::byte> data,
                                std::uint32_t src, std::uint32_t dst) {
  sim::Simulator& simulator = session_->simulator();
  const std::vector<std::uint64_t> lens = plan_split(data.size());
  const std::uint32_t seq = primary.stripe_seq_tx_++;

  std::vector<std::byte> descriptor(8 + 8 * rails_.size());
  store_u32(descriptor.data(), kDescMagic);
  store_u32(descriptor.data() + 4, seq);
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    store_u64(descriptor.data() + 8 + 8 * i, lens[i]);
  }

  sim::WaitQueue join(&simulator);
  BlockState block;
  block.join = &join;
  block.lanes.resize(rails_.size());

  // Hand the secondary segments to their lanes before any primary-rail
  // work, so they overlap the descriptor and the inline segment.
  std::size_t offset = lens[0];
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    if (lens[i] == 0) continue;
    ++block.pending;
    send_lane_queue(i, src, dst)
        .send(SendJob{data.data() + offset,
                      static_cast<std::size_t>(lens[i]), i, src, dst,
                      &block});
    offset += lens[i];
  }

  auto flush_send = [&primary] {
    if (primary.send_bmm_ != nullptr) {
      primary.send_bmm_->commit(primary, *primary.send_tm_);
      primary.send_tm_ = nullptr;
      primary.send_bmm_ = nullptr;
    }
  };
  primary.pack_impl(descriptor, SendMode::kSafer, ReceiveMode::kExpress);
  flush_send();
  if (lens[0] > 0) {
    const sim::Time start = simulator.now();
    primary.pack_impl(data.first(lens[0]), SendMode::kCheaper,
                      ReceiveMode::kCheaper);
    flush_send();
    observe_throughput(0, lens[0], simulator.now() - start);
  }
  while (block.pending > 0) join.wait();

  std::uint32_t failed_mask = 0;
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    if (block.lanes[i].failed) failed_mask |= 1u << i;
  }
  std::vector<std::byte> trailer(12);
  store_u32(trailer.data(), kTrailMagic);
  store_u32(trailer.data() + 4, seq);
  store_u32(trailer.data() + 8, failed_mask);
  primary.pack_impl(trailer, SendMode::kSafer, ReceiveMode::kExpress);
  flush_send();

  TrafficStats& stats = primary.stats_;
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    if (lens[i] == 0) continue;
    RailCounters& counters = stats.rails[rails_[i].channel->name()];
    ++counters.segments;
    counters.bytes += lens[i];
    counters.weight = rails_[i].weight_mbs;
  }

  // Resubmit each failed rail's slice: the rail is dead by now, so the
  // recursive block re-stripes it across the survivors only (worst case
  // everything lands on the primary), which grounds the recursion.
  offset = lens[0];
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    if (lens[i] == 0) continue;
    if ((failed_mask & (1u << i)) != 0) {
      ++stats.rails[rails_[i].channel->name()].resubmits;
      MAD2_TRACE_EVENT(obs::Category::kRail, "rail.resubmit", "send",
                       lens[i], i);
      stripe_send_block(primary, data.subspan(offset, lens[i]), src, dst);
    }
    offset += lens[i];
  }
}

void RailSet::stripe_recv_block(Connection& primary, std::span<std::byte> out,
                                std::uint32_t src, std::uint32_t dst) {
  sim::Simulator& simulator = session_->simulator();
  auto flush_recv = [&primary] {
    if (primary.recv_bmm_ != nullptr) {
      primary.recv_bmm_->checkout(primary, *primary.recv_tm_);
      primary.recv_tm_ = nullptr;
      primary.recv_bmm_ = nullptr;
    }
  };

  std::vector<std::byte> descriptor(8 + 8 * rails_.size());
  primary.unpack_impl(descriptor, SendMode::kSafer, ReceiveMode::kExpress);
  flush_recv();
  MAD2_CHECK(load_u32(descriptor.data()) == kDescMagic,
             "striped descriptor out of sync — asymmetric pack/unpack "
             "around a striped block");
  const std::uint32_t seq = load_u32(descriptor.data() + 4);
  MAD2_CHECK(seq == primary.stripe_seq_rx_,
             "striped block sequence mismatch");
  ++primary.stripe_seq_rx_;
  std::vector<std::uint64_t> lens(rails_.size());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    lens[i] = load_u64(descriptor.data() + 8 + 8 * i);
    total += lens[i];
  }
  MAD2_CHECK(total == out.size(),
             "striped descriptor announces a different block size than "
             "this unpack");

  sim::WaitQueue join(&simulator);
  BlockState block;
  block.join = &join;
  block.lanes.resize(rails_.size());

  std::size_t offset = lens[0];
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    if (lens[i] == 0) continue;
    ++block.pending;
    recv_lane_queue(i, src, dst)
        .send(RecvJob{out.data() + offset,
                      static_cast<std::size_t>(lens[i]), i, src, dst,
                      &block});
    offset += lens[i];
  }
  if (lens[0] > 0) {
    const sim::Time start = simulator.now();
    primary.unpack_impl(out.first(lens[0]), SendMode::kCheaper,
                        ReceiveMode::kCheaper);
    flush_recv();
    observe_throughput(0, lens[0], simulator.now() - start);
  }
  while (block.pending > 0) join.wait();

  std::vector<std::byte> trailer(12);
  primary.unpack_impl(trailer, SendMode::kSafer, ReceiveMode::kExpress);
  flush_recv();
  MAD2_CHECK(load_u32(trailer.data()) == kTrailMagic,
             "striped trailer out of sync");
  MAD2_CHECK(load_u32(trailer.data() + 4) == seq,
             "striped trailer sequence mismatch");
  const std::uint32_t failed_mask = load_u32(trailer.data() + 8);

  TrafficStats& stats = primary.stats_;
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    if (lens[i] == 0) continue;
    RailCounters& counters = stats.rails[rails_[i].channel->name()];
    ++counters.segments;
    counters.bytes += lens[i];
    counters.weight = rails_[i].weight_mbs;
  }

  offset = lens[0];
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    if (lens[i] == 0) continue;
    if ((failed_mask & (1u << i)) == 0 && block.lanes[i].failed) {
      // The sender's flush was acknowledged, so every byte reached our
      // shim; the stream was merely poisoned while the tail sat in the
      // delivery queue. Land the remainder — it is guaranteed to arrive.
      drain_segment(i, src, dst,
                    out.subspan(offset + block.lanes[i].done_bytes,
                                lens[i] - block.lanes[i].done_bytes));
    }
    offset += lens[i];
  }
  offset = lens[0];
  for (std::size_t i = 1; i < rails_.size(); ++i) {
    if (lens[i] == 0) continue;
    if ((failed_mask & (1u << i)) != 0) {
      ++stats.rails[rails_[i].channel->name()].resubmits;
      MAD2_TRACE_EVENT(obs::Category::kRail, "rail.resubmit", "recv",
                       lens[i], i);
      stripe_recv_block(primary, out.subspan(offset, lens[i]), src, dst);
    }
    offset += lens[i];
  }
}

// ----------------------------------------------------------------- lanes ---

DrrGate& RailSet::send_gate_for(std::size_t rail, std::uint32_t dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(rail) << 32) | dst;
  auto it = send_gates_.find(key);
  if (it == send_gates_.end()) {
    it = send_gates_
             .emplace(key, std::make_unique<DrrGate>(&session_->simulator(),
                                                     fair_quantum_))
             .first;
    for (const auto& [src, weight] : flow_weights_) {
      it->second->set_weight(src, weight);
    }
  }
  return *it->second;
}

void RailSet::set_flow_weight(std::uint32_t src, double weight) {
  MAD2_CHECK(fair_, "flow weights need fair scheduling (the congestion "
                    "stanza); arrival-order lanes have no schedule to "
                    "weight");
  flow_weights_[src] = weight;
  for (auto& [key, gate] : send_gates_) gate->set_weight(src, weight);
}

const DrrGate* RailSet::send_gate(std::size_t rail, std::uint32_t dst) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(rail) << 32) | dst;
  auto it = send_gates_.find(key);
  return it == send_gates_.end() ? nullptr : it->second.get();
}

sim::BoundedChannel<RailSet::SendJob>& RailSet::send_lane_queue(
    std::size_t rail, std::uint32_t src, std::uint32_t dst) {
  auto it = send_lanes_.find(lane_key(rail, src, dst));
  MAD2_CHECK(it != send_lanes_.end(), "no send lane for this rail/pair");
  return *it->second;
}

sim::BoundedChannel<RailSet::RecvJob>& RailSet::recv_lane_queue(
    std::size_t rail, std::uint32_t src, std::uint32_t dst) {
  auto it = recv_lanes_.find(lane_key(rail, src, dst));
  MAD2_CHECK(it != recv_lanes_.end(), "no recv lane for this rail/pair");
  return *it->second;
}

void RailSet::send_lane(std::size_t rail,
                        sim::BoundedChannel<SendJob>* jobs) {
  for (;;) {
    std::optional<SendJob> job = jobs->receive();
    if (!job) return;
    // Fair scheduling: competing sources heading for the same (rail, dst)
    // take turns by DRR byte quanta. The wait happens before `start`, so
    // arbitration time never pollutes the weight estimator.
    DrrGate* gate = fair_ ? &send_gate_for(rail, job->dst) : nullptr;
    if (gate != nullptr) gate->acquire(job->src, job->len);
    const sim::Time start = session_->simulator().now();
    MAD2_TRACE_SPAN(span, obs::Category::kRail, "rail.send_segment");
    span.args(job->len, rail);
    // Segment-boundary instants for distributed madtrace: with
    // trace-context propagation on, every striped segment marks the
    // moment it was posted to its rail and the moment it landed, so a
    // weaved cross-node timeline can line packet hops up against the
    // rail schedule underneath them. Gated on the propagation flag like
    // the forwarding hop stamps — plain kRail tracing is unchanged.
    const bool boundaries =
        obs::trace_enabled(obs::Category::kRail) &&
        obs::recorder()->config().propagation;
    if (boundaries) {
      obs::trace_event(obs::Category::kRail, "rail.segment_post", "send",
                       job->len, rail);
    }
    const Status status =
        send_segment(rail, job->src, job->dst, {job->data, job->len});
    if (gate != nullptr) gate->release();
    BlockState::LaneResult& lane = job->block->lanes[rail];
    lane.failed = !status.is_ok();
    if (status.is_ok()) {
      lane.done_bytes = job->len;
      if (boundaries) {
        obs::trace_event(obs::Category::kRail, "rail.segment_land", "send",
                         job->len, rail);
      }
      observe_throughput(rail, job->len,
                         session_->simulator().now() - start);
    } else {
      mark_rail_dead(rail, status);
    }
    if (--job->block->pending == 0) job->block->join->notify_all();
  }
}

void RailSet::recv_lane(std::size_t rail,
                        sim::BoundedChannel<RecvJob>* jobs) {
  for (;;) {
    std::optional<RecvJob> job = jobs->receive();
    if (!job) return;
    const sim::Time start = session_->simulator().now();
    MAD2_TRACE_SPAN(span, obs::Category::kRail, "rail.recv_segment");
    span.args(job->len, rail);
    const bool boundaries =
        obs::trace_enabled(obs::Category::kRail) &&
        obs::recorder()->config().propagation;
    if (boundaries) {
      obs::trace_event(obs::Category::kRail, "rail.segment_post", "recv",
                       job->len, rail);
    }
    std::size_t got = 0;
    const Status status =
        recv_segment(rail, job->src, job->dst, {job->out, job->len}, &got);
    BlockState::LaneResult& lane = job->block->lanes[rail];
    lane.done_bytes = got;
    lane.failed = !status.is_ok();
    if (status.is_ok()) {
      if (boundaries) {
        obs::trace_event(obs::Category::kRail, "rail.segment_land", "recv",
                         job->len, rail);
      }
      observe_throughput(rail, job->len,
                         session_->simulator().now() - start);
    } else {
      mark_rail_dead(rail, status);
    }
    if (--job->block->pending == 0) job->block->join->notify_all();
  }
}

// --------------------------------------------------------- segment moves ---

Status RailSet::send_segment(std::size_t rail, std::uint32_t src,
                             std::uint32_t dst,
                             std::span<const std::byte> data) {
  Channel& channel = *rails_[rail].channel;
  ChannelEndpoint& endpoint = channel.endpoint(src);
  Connection& conn = endpoint.connection(dst);
  NetworkInstance& network = channel.network();
  if (network.tcp != nullptr && network.tcp->reliable() != nullptr) {
    // Fallible rail: drive the stream with the checked calls and flush,
    // so OK means *delivered* — the trailer's failed mask must be
    // truthful by the time the sender emits it.
    net::TcpStream* stream = conn.state<TcpPmm::State>().stream;
    Status status = stream->send_checked(data);
    if (status.is_ok()) status = stream->flush();
    return status;
  }
  if (network.ib != nullptr) {
    // Fallible RDMA rail: the checked write rendezvous returns link death
    // as a Status (all-or-nothing), so a dead HCA link resubmits the
    // whole segment on the survivors instead of aborting the session.
    return static_cast<IbPmm&>(endpoint.pmm())
        .segment_send_checked(conn, data);
  }
  Tm& tm = endpoint.pmm().select_tm(data.size(), SendMode::kCheaper,
                                    ReceiveMode::kCheaper);
  if (tm.uses_static_buffers()) {
    // Static-buffer-only rail (e.g. SBP): chunk through driver slots. The
    // receiver consumes whole buffers, so no chunk agreement is needed.
    std::size_t offset = 0;
    while (offset < data.size()) {
      StaticBuffer buffer = tm.obtain_static_buffer(conn);
      const std::size_t chunk =
          std::min(buffer.memory.size(), data.size() - offset);
      endpoint.node().charge_memcpy(chunk);
      std::memcpy(buffer.memory.data(), data.data() + offset, chunk);
      buffer.used = chunk;
      tm.send_static_buffer(conn, buffer);
      offset += chunk;
    }
    return Status::ok();
  }
  tm.send_buffer(conn, data);
  return Status::ok();
}

Status RailSet::recv_segment(std::size_t rail, std::uint32_t src,
                             std::uint32_t dst, std::span<std::byte> out,
                             std::size_t* got) {
  *got = 0;
  Channel& channel = *rails_[rail].channel;
  ChannelEndpoint& endpoint = channel.endpoint(dst);
  Connection& conn = endpoint.connection(src);
  NetworkInstance& network = channel.network();
  if (network.tcp != nullptr && network.tcp->reliable() != nullptr) {
    net::TcpStream* stream = conn.state<TcpPmm::State>().stream;
    while (*got < out.size()) {
      std::size_t chunk = 0;
      const Status status =
          stream->recv_some_checked(out.subspan(*got), &chunk);
      if (!status.is_ok()) return status;
      *got += chunk;
    }
    return Status::ok();
  }
  if (network.ib != nullptr) {
    const Status status = static_cast<IbPmm&>(endpoint.pmm())
                              .segment_recv_checked(conn, out);
    if (status.is_ok()) *got = out.size();
    return status;
  }
  Tm& tm = endpoint.pmm().select_tm(out.size(), SendMode::kCheaper,
                                    ReceiveMode::kCheaper);
  if (tm.uses_static_buffers()) {
    while (*got < out.size()) {
      StaticBuffer buffer = tm.receive_static_buffer(conn);
      MAD2_CHECK(*got + buffer.used <= out.size(),
                 "striped segment overran its slice");
      endpoint.node().charge_memcpy(buffer.used);
      std::memcpy(out.data() + *got, buffer.memory.data(), buffer.used);
      *got += buffer.used;
      tm.release_static_buffer(conn, buffer);
    }
    return Status::ok();
  }
  tm.receive_buffer(conn, out);
  *got = out.size();
  return Status::ok();
}

void RailSet::drain_segment(std::size_t rail, std::uint32_t src,
                            std::uint32_t dst, std::span<std::byte> out) {
  // A partially-landed segment with a sender-side OK is always
  // stream-backed: IB rails are all-or-nothing (the sender's write ack
  // exists only after the receiver's completion was pushed, so sender-OK
  // implies the receiver sees the landing too and never reaches this
  // drain). recv_some ignores the poison and the delivery pump keeps
  // filling rx until the shim's queue is empty, so this terminates
  // exactly at the segment boundary.
  Channel& channel = *rails_[rail].channel;
  MAD2_CHECK(channel.network().tcp != nullptr,
             "drained a non-stream rail");
  Connection& conn = channel.endpoint(dst).connection(src);
  net::TcpStream* stream = conn.state<TcpPmm::State>().stream;
  std::size_t got = 0;
  while (got < out.size()) {
    stream->wait_readable();
    got += stream->recv_some(out.subspan(got));
  }
}

}  // namespace mad2::mad
