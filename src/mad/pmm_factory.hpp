// Creates the protocol management module matching a channel's network kind.
#pragma once

#include <memory>

#include "mad/pmm.hpp"

namespace mad2::mad {

class ChannelEndpoint;

std::unique_ptr<Pmm> make_pmm(ChannelEndpoint& endpoint);

}  // namespace mad2::mad
