// Protocol Management Module interface (paper Section 3.3).
//
// One PMM instance exists per (channel, node): it groups the channel's
// Transmission Modules for one network interface, owns the protocol-level
// demultiplexing for incoming traffic, and answers the Switch's TM
// selection query (Fig. 3, step 2).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "mad/tm.hpp"
#include "mad/types.hpp"

namespace mad2::mad {

class Pmm {
 public:
  virtual ~Pmm() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Per-connection protocol state (driver handles, segment rings, credit
  /// counters). Created once per (local, remote) pair at session setup.
  struct ConnState {
    virtual ~ConnState() = default;
  };
  virtual std::unique_ptr<ConnState> make_conn_state(std::uint32_t remote) = 0;

  /// Second setup phase, run after every endpoint of the channel exists:
  /// resolve handles that live on peer nodes (e.g. map the SISCI segments
  /// the peers created). The real library bootstraps this over a control
  /// TCP connection; the simulation wires it directly.
  virtual void finish_setup() {}

  /// The Switch's TM query: pick the best transmission module for a block
  /// of `len` bytes with the given semantics. Must be a pure function of
  /// its arguments — the receive side replays it to stay symmetric.
  virtual Tm& select_tm(std::size_t len, SendMode smode,
                        ReceiveMode rmode) = 0;

  /// Size-class boundaries of select_tm, for the Switch's flat dispatch
  /// tables (see Connection): each value `b` marks that the verdict may
  /// change between `len <= b` and `len > b`, and the verdict must be
  /// constant on every interval between consecutive boundaries (for every
  /// send/receive-mode pair). An engaged empty vector means selection is
  /// size-independent. Returning nullopt (the default) keeps the Switch on
  /// the per-call virtual query — the right answer for PMMs whose
  /// selection cannot be described as size intervals.
  [[nodiscard]] virtual std::optional<std::vector<std::size_t>>
  selection_breakpoints() const {
    return std::nullopt;
  }

  /// Block until the first packet of a new incoming message is available
  /// on this channel; returns the remote global node id. Called by
  /// begin_unpacking.
  virtual std::uint32_t wait_incoming() = 0;

  /// Nominal large-block bandwidth of this protocol module, decimal MB/s:
  /// the driver's self-report of what its data path can sustain. Seeds
  /// the rail scheduler's weight for a rail on this adapter (refined at
  /// runtime from measured per-segment throughput); never used for TM
  /// selection, which stays a pure function of (len, modes).
  [[nodiscard]] virtual double bandwidth_hint_mbs() const { return 100.0; }
};

}  // namespace mad2::mad
