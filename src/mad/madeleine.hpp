// Madeleine II — public umbrella header.
//
// The library implements the CLUSTER 2000 paper "Madeleine II: a Portable
// and Efficient Communication Library for High-Performance Cluster
// Computing" on top of a simulated cluster substrate. Quick tour:
//
//   mad::SessionConfig cfg;                   // nodes, networks, channels
//   mad::Session session(cfg);
//   session.spawn(0, "sender", [&](mad::NodeRuntime& rt) {
//     auto& conn = rt.channel("myri").begin_packing(/*remote=*/1);
//     mad_pack(conn, header, mad::send_CHEAPER, mad::receive_EXPRESS);
//     mad_pack(conn, body, mad::send_CHEAPER, mad::receive_CHEAPER);
//     mad_end_packing(conn);
//   });
//   session.spawn(1, "receiver", [&](mad::NodeRuntime& rt) {
//     auto& conn = mad_begin_unpacking(rt.channel("myri"));
//     mad_unpack(conn, header, mad::send_CHEAPER, mad::receive_EXPRESS);
//     ... allocate from header ...
//     mad_unpack(conn, body, mad::send_CHEAPER, mad::receive_CHEAPER);
//     mad_end_unpacking(conn);
//   });
//   session.run();
//
// The free functions below mirror the paper's Table 1 names exactly; they
// are thin wrappers over the object API (Connection / ChannelEndpoint).
#pragma once

#include "mad/connection.hpp"
#include "mad/session.hpp"
#include "mad/types.hpp"

namespace mad2::mad {

/// Table 1: initiate a new message on `channel` towards `remote`.
inline Connection& mad_begin_packing(ChannelEndpoint& channel,
                                     std::uint32_t remote) {
  return channel.begin_packing(remote);
}

/// Table 1: initiate the reception of the first incoming message.
inline Connection& mad_begin_unpacking(ChannelEndpoint& channel) {
  return channel.begin_unpacking();
}

/// Table 1: pack a data block.
inline void mad_pack(Connection& connection, std::span<const std::byte> data,
                     SendMode smode = send_CHEAPER,
                     ReceiveMode rmode = receive_CHEAPER) {
  connection.pack(data, smode, rmode);
}

/// Table 1: unpack a data block (must mirror the pack sequence).
inline void mad_unpack(Connection& connection, std::span<std::byte> out,
                       SendMode smode = send_CHEAPER,
                       ReceiveMode rmode = receive_CHEAPER) {
  connection.unpack(out, smode, rmode);
}

/// Table 1: finalize an emission.
inline void mad_end_packing(Connection& connection) {
  connection.end_packing();
}

/// Table 1: finalize a reception.
inline void mad_end_unpacking(Connection& connection) {
  connection.end_unpacking();
}

/// Typed convenience wrappers (pack/unpack a trivially copyable value).
/// Generic over the connection type so virtual connections (the
/// forwarding extension) work too.
template <typename ConnT, typename T>
void mad_pack_value(ConnT& connection, const T& value,
                    SendMode smode = send_CHEAPER,
                    ReceiveMode rmode = receive_CHEAPER) {
  static_assert(std::is_trivially_copyable_v<T>);
  connection.pack(std::as_bytes(std::span<const T, 1>(&value, 1)), smode,
                  rmode);
}

template <typename ConnT, typename T>
void mad_unpack_value(ConnT& connection, T& value,
                      SendMode smode = send_CHEAPER,
                      ReceiveMode rmode = receive_CHEAPER) {
  static_assert(std::is_trivially_copyable_v<T>);
  connection.unpack(std::as_writable_bytes(std::span<T, 1>(&value, 1)),
                    smode, rmode);
}

}  // namespace mad2::mad
