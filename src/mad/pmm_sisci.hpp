// SISCI protocol management module (paper Section 5.2.1).
//
// Three transmission modules, as the paper ships:
//  - an optimized *short-message* TM: payload + header written in one PIO
//    transaction into a small slot ring (this is what produces the 3.9 us
//    Madeleine latency);
//  - the *regular PIO* TM: data PIO-written into a 2-deep ring of 8 kB
//    buffers. For blocks above one buffer the transfer naturally becomes
//    the paper's adaptive dual-buffering pipeline (sender fills buffer
//    k+1 while the receiver drains buffer k) — the Figure 4 kink at 8 kB;
//  - a *DMA* TM, implemented but disabled by default because the D310 DMA
//    engine cannot exceed ~35 MB/s (enable via SciPmmOptions).
//
// Wire structure per connection direction: a ring segment on the receiver
// (short slots + bulk buffers, each with a {seq, len} header written after
// the payload) and a feedback segment on the sender where the receiver
// PIO-writes consumed counters (slot reuse / dual-buffer pacing).
//
// Under the session's `fastpath` stanza the per-unit feedback writes are
// deferred to the node's ProgressEngine tick (one PIO write per dirty
// counter per tick), with a flush-before-block safety net; see
// docs/PERFORMANCE.md. Without the stanza the legacy per-message flush is
// bit-identical to earlier releases.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "mad/pmm.hpp"
#include "mad/sci_options.hpp"
#include "mad/session.hpp"
#include "net/sisci.hpp"

namespace mad2::mad {

class SciPmm;

class SciShortTm final : public Tm {
 public:
  explicit SciShortTm(SciPmm* pmm) : pmm_(pmm) {}
  [[nodiscard]] std::string_view name() const override { return "sci-short"; }
  [[nodiscard]] bool supports_groups() const override { return false; }
  void send_buffer(Connection&, std::span<const std::byte>) override;
  void receive_buffer(Connection&, std::span<std::byte>) override;

 private:
  SciPmm* pmm_;
};

class SciBulkTm : public Tm {
 public:
  SciBulkTm(SciPmm* pmm, bool dma) : pmm_(pmm), dma_(dma) {}
  [[nodiscard]] std::string_view name() const override {
    return dma_ ? "sci-dma" : "sci-pio";
  }
  void send_buffer(Connection&, std::span<const std::byte>) override;
  void receive_buffer(Connection&, std::span<std::byte>) override;

 private:
  SciPmm* pmm_;
  bool dma_;
};

class SciPmm final : public Pmm {
 public:
  SciPmm(ChannelEndpoint& endpoint, SciPmmOptions options);

  [[nodiscard]] std::string_view name() const override { return "sisci"; }

  struct State : ConnState {
    std::uint32_t remote = 0;
    std::uint32_t remote_port = 0;
    // Local segments.
    net::SegmentId rx_ring = 0;      // peer writes data here (peer -> me)
    net::SegmentId tx_feedback = 0;  // peer writes consumed counts (me -> peer)
    // Remote handles (resolved in finish_setup).
    net::RemoteSegment tx_ring;      // peer's rx_ring for me -> peer
    net::RemoteSegment rx_feedback;  // peer's tx_feedback for peer -> me
    // Send counters (me -> peer).
    std::uint64_t short_sent = 0;
    std::uint64_t bulk_sent = 0;
    // Receive counters (peer -> me).
    std::uint64_t short_rcvd = 0;
    std::uint64_t bulk_rcvd = 0;
    std::uint64_t short_fb_written = 0;
    std::uint64_t bulk_fb_written = 0;
  };

  std::unique_ptr<ConnState> make_conn_state(std::uint32_t remote) override;
  void finish_setup() override;
  Tm& select_tm(std::size_t len, SendMode smode, ReceiveMode rmode) override;
  /// short | PIO | (optionally) DMA, split purely by length.
  [[nodiscard]] std::optional<std::vector<std::size_t>> selection_breakpoints()
      const override;
  std::uint32_t wait_incoming() override;
  [[nodiscard]] double bandwidth_hint_mbs() const override;

  // --- ring geometry and helpers used by the TMs -------------------------
  [[nodiscard]] const SciPmmOptions& options() const { return options_; }
  [[nodiscard]] net::SciPort& port() { return *port_; }
  [[nodiscard]] ChannelEndpoint& endpoint() { return endpoint_; }

  static constexpr std::uint32_t kHeaderBytes = 8;  // u32 seq, u32 len
  [[nodiscard]] std::uint64_t short_slot_offset(std::uint64_t index) const;
  [[nodiscard]] std::uint64_t bulk_buffer_offset(std::uint64_t index) const;
  [[nodiscard]] std::uint64_t ring_bytes() const;

  /// True if the next expected incoming unit from this peer has arrived.
  [[nodiscard]] bool incoming_ready(const State& state);

  void send_short_unit(Connection& connection,
                       std::span<const std::byte> data);
  void recv_short_unit(Connection& connection, std::span<std::byte> out);
  void send_bulk(Connection& connection, std::span<const std::byte> data,
                 bool dma);
  void recv_bulk(Connection& connection, std::span<std::byte> out);

 private:
  /// Progress-tick callback (fastpath only): PIO-write every dirty
  /// consumed counter, one write per counter per peer.
  void flush_owed_feedback();
  /// Flush-before-block safety net: a fiber about to sleep returns its
  /// owed feedback inline so a peer waiting on slot/buffer credits is
  /// never serialized behind the next progress tick.
  void maybe_flush_owed() {
    if (defer_feedback_) flush_owed_feedback();
  }
  ChannelEndpoint& endpoint_;
  SciPmmOptions options_;
  net::SciPort* port_;
  SciShortTm short_tm_;
  SciBulkTm pio_tm_;
  SciBulkTm dma_tm_;
  std::map<std::uint32_t, State*> states_;
  std::vector<std::uint32_t> peer_order_;
  std::size_t rr_next_ = 0;
  // Fastpath feedback deferral (docs/PERFORMANCE.md).
  ProgressEngine* engine_ = nullptr;
  std::size_t doorbell_ = 0;
  bool defer_feedback_ = false;
};

}  // namespace mad2::mad
