// Multi-rail striping (paper Sections 3 and 5: multi-protocol,
// multi-adapter sessions).
//
// A *rail set* groups channels a session holds to the same peers across
// different adapters. The first member is the *primary* rail: applications
// keep packing into its connections, and small blocks travel exactly as
// before. A large send_CHEAPER/receive_CHEAPER block, however, is split by
// the rail scheduler into per-rail segments — chunk sizes proportional to
// each rail's measured bandwidth, so a fast SISCI rail gets more bytes
// than a TCP rail — posted concurrently through per-rail sender fibers,
// and reassembled in order into user memory on the receive side (the
// segments land directly in the destination span: zero-copy landing).
//
// Wire protocol per striped block, all framing on the primary rail:
//
//   descriptor {magic, seq, lens[rail_count]}   send_SAFER/receive_EXPRESS
//   segment 0 (primary's slice, inline)         send_CHEAPER/receive_CHEAPER
//   ... secondary segments ride their rails concurrently ...
//   trailer {magic, seq, failed-rail mask}      send_SAFER/receive_EXPRESS
//
// The framing blocks ride the normal Switch machinery (select_tm +
// select_bmm_kind with forced commit/checkout), so both sides stay
// symmetric about them on every protocol — and since EXPRESS blocks are
// never striped, the recursion grounds out. The receiver derives its
// segment split from the descriptor alone; weights are sender-side state.
//
// Ordering contract (paper Section 4): striping preserves it because an
// eligible block forces a BMM flush before and after itself, and the
// block completes synchronously — by the time pack()/unpack() returns,
// every rail has joined. receive_EXPRESS blocks are never striped (they
// must be available at unpack return; scattering them would not help a
// latency-bound block anyway). Rail members must be dedicated: regular
// traffic on a member channel concurrent with a striped block would
// interleave with segment bytes.
//
// Degradation: a rail whose link reports a fault (net::Status through the
// session's error routing) is marked dead and drained; segments that were
// outstanding on it are resubmitted across the surviving rails (the
// trailer's failed mask keeps both sides symmetric about which slices
// travel again), the weight table is updated, and later blocks simply
// stop using the rail. The session stays healthy; RailSet::health()
// records the degradation. Only a *secondary* rail may die this way —
// the primary carries the framing, so its death fails the session.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mad/congestion.hpp"
#include "sim/sync.hpp"
#include "util/status.hpp"

namespace mad2::mad {

class Channel;
class Connection;
class Session;
struct NetworkInstance;

/// Blocks at least this large are striped (segments below it would be
/// latency- rather than bandwidth-bound on every modeled adapter).
inline constexpr std::size_t kDefaultStripeThreshold = 64 * 1024;

/// No rail is assigned a segment smaller than this; tiny shares fold into
/// the primary rail instead of paying a slow rail's fixed costs.
inline constexpr std::size_t kMinStripeSegment = 16 * 1024;

/// One rail set in the session configuration.
struct RailSetDef {
  std::string name;
  /// Member channel names; the first is the primary rail. Members must be
  /// non-paranoid, on pairwise-distinct networks, and every member
  /// network must span the same node set.
  std::vector<std::string> channels;
  /// Blocks of at least this many bytes are striped.
  std::size_t stripe_threshold = kDefaultStripeThreshold;
};

class RailSet {
 public:
  RailSet(Session* session, RailSetDef def);
  ~RailSet();

  RailSet(const RailSet&) = delete;
  RailSet& operator=(const RailSet&) = delete;

  /// Second setup phase (after every channel endpoint exists): validate
  /// members, bind the primary channel's connections, seed weights from
  /// the drivers' bandwidth self-reports, spawn the per-rail lane fibers.
  void finish_setup();

  [[nodiscard]] const std::string& name() const { return def_.name; }
  [[nodiscard]] const RailSetDef& def() const { return def_; }
  [[nodiscard]] std::size_t threshold() const { return def_.stripe_threshold; }
  [[nodiscard]] std::size_t rail_count() const { return rails_.size(); }
  [[nodiscard]] double weight(std::size_t rail) const;
  [[nodiscard]] bool alive(std::size_t rail) const;

  /// OK while every rail is healthy; the first rail failure afterwards.
  /// The session keeps running degraded — this records the evidence.
  [[nodiscard]] const Status& health() const { return degraded_; }

  /// Session failure routing: if `network` backs a *secondary* rail, mark
  /// it dead (weight 0, no further segments) and return true — the
  /// session stays up. False for the primary rail or a foreign network.
  bool on_network_failed(const NetworkInstance* network,
                         const Status& status);

  /// True when the session's `congestion` stanza put the TX lanes behind
  /// per-(rail, dst) DRR gates (segments of competing sources drain in
  /// byte-fair quanta instead of lane-arrival order).
  [[nodiscard]] bool fair_scheduling() const { return fair_; }
  /// The gate arbitrating TX segments toward `dst` on `rail`; nullptr
  /// while fair scheduling is off or nothing was sent there yet.
  [[nodiscard]] const DrrGate* send_gate(std::size_t rail,
                                         std::uint32_t dst) const;
  /// Weighted-fair share for source `src` at every (rail, dst) send
  /// gate, present and future: its segments replenish quantum*weight per
  /// DRR round. Requires fair scheduling (the congestion stanza).
  void set_flow_weight(std::uint32_t src, double weight);

 private:
  friend class Connection;

  // Called from Connection's Switch for an eligible block (both sides of
  // the channel replay the same eligibility decision).
  void stripe_send(Connection& primary, std::span<const std::byte> data);
  void stripe_recv(Connection& primary, std::span<std::byte> out);

  struct Rail {
    Channel* channel = nullptr;
    double weight_mbs = 1.0;  // EWMA of measured segment throughput
    bool alive = true;
  };

  /// Join state of one striped block, shared with the lanes working on
  /// it. Stack-allocated in stripe_*_block; valid until pending == 0.
  struct BlockState {
    std::size_t pending = 0;
    sim::WaitQueue* join = nullptr;
    struct LaneResult {
      std::size_t done_bytes = 0;
      bool failed = false;
    };
    std::vector<LaneResult> lanes;  // indexed by rail
  };

  struct SendJob {
    const std::byte* data = nullptr;
    std::size_t len = 0;
    std::size_t rail = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    BlockState* block = nullptr;
  };
  struct RecvJob {
    std::byte* out = nullptr;
    std::size_t len = 0;
    std::size_t rail = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    BlockState* block = nullptr;
  };

  void validate_members();
  void stripe_send_block(Connection& primary,
                         std::span<const std::byte> data, std::uint32_t src,
                         std::uint32_t dst);
  void stripe_recv_block(Connection& primary, std::span<std::byte> out,
                         std::uint32_t src, std::uint32_t dst);

  /// Sender-side split of `total` bytes across the currently-alive rails,
  /// proportional to weight; index 0 (primary) takes the remainder.
  [[nodiscard]] std::vector<std::uint64_t> plan_split(
      std::uint64_t total) const;

  // Raw segment transfer on rail `rail` between global nodes src -> dst,
  // outside any pack/unpack message (rails are dedicated). Fallible only
  // on a faulty-fabric TCP rail; every other driver is lossless.
  Status send_segment(std::size_t rail, std::uint32_t src, std::uint32_t dst,
                      std::span<const std::byte> data);
  Status recv_segment(std::size_t rail, std::uint32_t src, std::uint32_t dst,
                      std::span<std::byte> out, std::size_t* got);
  /// Finish landing a segment whose sender flushed OK but whose stream was
  /// poisoned while the tail was still in the shim's delivery queue.
  void drain_segment(std::size_t rail, std::uint32_t src, std::uint32_t dst,
                     std::span<std::byte> out);

  void send_lane(std::size_t rail, sim::BoundedChannel<SendJob>* jobs);
  void recv_lane(std::size_t rail, sim::BoundedChannel<RecvJob>* jobs);
  [[nodiscard]] sim::BoundedChannel<SendJob>& send_lane_queue(
      std::size_t rail, std::uint32_t src, std::uint32_t dst);
  [[nodiscard]] sim::BoundedChannel<RecvJob>& recv_lane_queue(
      std::size_t rail, std::uint32_t src, std::uint32_t dst);

  void observe_throughput(std::size_t rail, std::size_t bytes,
                          std::int64_t elapsed_ns);
  void mark_rail_dead(std::size_t rail, const Status& status);

  /// Find-or-create the DRR gate of (rail, dst). TX side only: the
  /// receive lanes stay unarbitrated, because the sender decides ordering
  /// and a receiver-side gate could hold a lane mid-handshake and
  /// deadlock against it.
  [[nodiscard]] DrrGate& send_gate_for(std::size_t rail, std::uint32_t dst);

  static constexpr std::uint32_t kDescMagic = 0x53524c31u;   // "SRL1"
  static constexpr std::uint32_t kTrailMagic = 0x53524c32u;  // "SRL2"

  Session* session_;
  RailSetDef def_;
  std::vector<Rail> rails_;
  Status degraded_;
  // Directed (rail, src, dst) -> lane job queue; one persistent fiber per
  // queue, spawned in finish_setup (fiber-per-rail, not fiber-per-segment:
  // fiber stacks live until the simulator dies).
  std::map<std::uint64_t, std::unique_ptr<sim::BoundedChannel<SendJob>>>
      send_lanes_;
  std::map<std::uint64_t, std::unique_ptr<sim::BoundedChannel<RecvJob>>>
      recv_lanes_;
  // Weighted-fair TX arbitration (session `congestion` stanza); gates are
  // created lazily per (rail, dst) as segments first head there.
  bool fair_ = false;
  std::size_t fair_quantum_ = 0;
  std::map<std::uint64_t, std::unique_ptr<DrrGate>> send_gates_;
  // Sticky per-source weights, replayed onto lazily created gates.
  std::map<std::uint32_t, double> flow_weights_;
};

}  // namespace mad2::mad
