#include "mad/bmm.hpp"

#include <algorithm>
#include <cstring>

#include "hw/node.hpp"
#include "mad/connection.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace mad2::mad {

BmmKind select_bmm_kind(const Tm& tm, SendMode smode, ReceiveMode rmode) {
  if (tm.uses_static_buffers()) return BmmKind::kStaticCopy;
  if (smode == SendMode::kLater) return BmmKind::kLater;
  if (smode == SendMode::kSafer) return BmmKind::kEager;
  // send_CHEAPER: aggregate when deferral is allowed and pays off.
  if (rmode == ReceiveMode::kCheaper && tm.supports_groups()) {
    return BmmKind::kGroup;
  }
  return BmmKind::kEager;
}

namespace {

// ---------------------------------------------------------------- Eager ---
// Dynamic buffers, handled immediately. send_buffer returns once the user
// memory is reusable, which is exactly the send_SAFER contract.

class EagerSendBmm final : public SendBmm {
 public:
  void pack(Connection& connection, Tm& tm, std::span<const std::byte> data,
            SendMode, ReceiveMode) override {
    tm.send_buffer(connection, data);
  }
  void commit(Connection&, Tm&) override {}
};

class EagerRecvBmm final : public RecvBmm {
 public:
  void unpack(Connection& connection, Tm& tm, std::span<std::byte> out,
              SendMode, ReceiveMode) override {
    tm.receive_buffer(connection, out);
  }
  void checkout(Connection&, Tm&) override {}
};

// ---------------------------------------------------------------- Group ---
// Dynamic buffers aggregated into one scatter/gather group, flushed at
// commit. Only reached with send_CHEAPER + receive_CHEAPER (the policy
// above), so deferring both the read and the extraction is legal.

class GroupSendBmm final : public SendBmm {
 public:
  void pack(Connection&, Tm&, std::span<const std::byte> data, SendMode,
            ReceiveMode) override {
    MAD2_TRACE_EVENT(obs::Category::kBmm, "bmm.group_add", nullptr,
                     data.size(), group_.size());
    group_.push_back(data);
  }
  void commit(Connection& connection, Tm& tm) override {
    if (group_.empty()) return;
    MAD2_TRACE_EVENT(obs::Category::kBmm, "bmm.group_flush", nullptr,
                     group_.size());
    tm.send_buffer_group(connection, group_);
    group_.clear();
  }

 private:
  std::vector<std::span<const std::byte>> group_;
};

class GroupRecvBmm final : public RecvBmm {
 public:
  void unpack(Connection&, Tm&, std::span<std::byte> out, SendMode,
              ReceiveMode) override {
    pending_.push_back(out);
  }
  void checkout(Connection& connection, Tm& tm) override {
    if (pending_.empty()) return;
    tm.receive_sub_buffer_group(connection, pending_);
    pending_.clear();
  }

 private:
  std::vector<std::span<std::byte>> pending_;
};

// ---------------------------------------------------------------- Later ---
// send_LATER: blocks are recorded by reference and only read at commit, so
// user modifications between pack and end_packing reach the message. On
// the receive side, receive_EXPRESS forces draining up to the current
// block immediately (the data must be available when unpack returns).

class LaterSendBmm final : public SendBmm {
 public:
  void pack(Connection&, Tm&, std::span<const std::byte> data, SendMode,
            ReceiveMode) override {
    recorded_.push_back(data);
  }
  void commit(Connection& connection, Tm& tm) override {
    if (!recorded_.empty()) {
      MAD2_TRACE_EVENT(obs::Category::kBmm, "bmm.later_flush", nullptr,
                       recorded_.size());
    }
    for (const auto& block : recorded_) tm.send_buffer(connection, block);
    recorded_.clear();
  }

 private:
  std::vector<std::span<const std::byte>> recorded_;
};

class LaterRecvBmm final : public RecvBmm {
 public:
  void unpack(Connection& connection, Tm& tm, std::span<std::byte> out,
              SendMode, ReceiveMode rmode) override {
    pending_.push_back(out);
    if (rmode == ReceiveMode::kExpress) checkout(connection, tm);
  }
  void checkout(Connection& connection, Tm& tm) override {
    for (const auto& block : pending_) tm.receive_buffer(connection, block);
    pending_.clear();
  }

 private:
  std::vector<std::span<std::byte>> pending_;
};

// ----------------------------------------------------------- StaticCopy ---
// User data is copied through protocol buffers obtained from the TM.
// Successive blocks aggregate into one buffer until it fills, a
// receive_EXPRESS block closes it, or commit flushes it. The receive side
// replays exactly the same boundaries from the symmetric unpack sequence
// — no headers are needed (Section 2.2).

class StaticCopySendBmm final : public SendBmm {
 public:
  void pack(Connection& connection, Tm& tm, std::span<const std::byte> data,
            SendMode smode, ReceiveMode rmode) override {
    std::size_t done = 0;
    while (done < data.size()) {
      if (!have_buffer_) {
        buffer_ = tm.obtain_static_buffer(connection);
        have_buffer_ = true;
      }
      const std::size_t room = buffer_.memory.size() - buffer_.used;
      const std::size_t chunk = std::min(room, data.size() - done);
      if (smode == SendMode::kLater) {
        // send_LATER: reserve space now, read the user memory only when
        // the buffer is flushed (commit), so pre-flush modifications
        // reach the message.
        deferred_.push_back(
            DeferredCopy{buffer_.used, data.subspan(done, chunk)});
      } else {
        connection.node().charge_memcpy(chunk);
        std::memcpy(buffer_.memory.data() + buffer_.used, data.data() + done,
                    chunk);
      }
      buffer_.used += chunk;
      done += chunk;
      if (buffer_.used == buffer_.memory.size()) flush(connection, tm);
    }
    // EXPRESS blocks flush eagerly so the receiver gets the data without
    // waiting for the sender's end_packing. (send_LATER data in the same
    // buffer is necessarily read at this flush.)
    if (rmode == ReceiveMode::kExpress) flush(connection, tm);
  }

  void commit(Connection& connection, Tm& tm) override {
    flush(connection, tm);
  }

 private:
  struct DeferredCopy {
    std::size_t offset;  // within the current buffer
    std::span<const std::byte> source;
  };

  void flush(Connection& connection, Tm& tm) {
    if (!have_buffer_) return;
    for (const DeferredCopy& copy : deferred_) {
      connection.node().charge_memcpy(copy.source.size());
      std::memcpy(buffer_.memory.data() + copy.offset, copy.source.data(),
                  copy.source.size());
    }
    deferred_.clear();
    if (buffer_.used > 0) {
      MAD2_TRACE_EVENT(obs::Category::kBmm, "bmm.static_flush", nullptr,
                       buffer_.used, buffer_.memory.size());
      tm.send_static_buffer(connection, buffer_);
    }
    have_buffer_ = false;
    buffer_ = StaticBuffer{};
  }

  bool have_buffer_ = false;
  StaticBuffer buffer_;
  std::vector<DeferredCopy> deferred_;
};

class StaticCopyRecvBmm final : public RecvBmm {
 public:
  void unpack(Connection& connection, Tm& tm, std::span<std::byte> out,
              SendMode, ReceiveMode rmode) override {
    std::size_t done = 0;
    while (done < out.size()) {
      if (!have_buffer_) obtain(connection, tm);
      if (buffer_.memory.empty()) {
        // The TM bailed on a dead link with nothing queued (an empty
        // static buffer signals the broken stream). Leave the rest of
        // `out` unfilled, like the rendezvous TMs: the session is
        // failing and the fiber must not wedge or spin here.
        release(connection, tm);
        return;
      }
      const std::size_t avail = buffer_.used - consumed_;
      const std::size_t chunk = std::min(avail, out.size() - done);
      connection.node().charge_memcpy(chunk);
      std::memcpy(out.data() + done, buffer_.memory.data() + consumed_,
                  chunk);
      consumed_ += chunk;
      done += chunk;
      if (consumed_ == buffer_.used) release(connection, tm);
    }
    if (rmode == ReceiveMode::kExpress && have_buffer_) {
      // Mirror of the sender's EXPRESS flush: the buffer boundary falls
      // exactly here; a partially consumed buffer means the pack/unpack
      // sequences were not symmetric.
      MAD2_CHECK(consumed_ == buffer_.used,
                 "asymmetric pack/unpack around receive_EXPRESS block");
      release(connection, tm);
    }
  }

  bool unpack_borrow(Connection& connection, Tm& tm, std::size_t len,
                     ReceiveMode rmode,
                     std::vector<BorrowedBlock>& out) override {
    // Same stream-advance as a copying unpack of `len` bytes, but the
    // chunks are lent out as views instead of copied (and nothing is
    // charged: no host copy happens). The protocol buffer is returned to
    // the TM when the last view is dropped.
    std::size_t done = 0;
    while (done < len) {
      if (!have_buffer_) obtain(connection, tm);
      if (buffer_.memory.empty()) {
        // Broken stream (see StaticCopyRecvBmm::unpack): bail instead of
        // spinning on empty dead-link buffers.
        release(connection, tm);
        return true;
      }
      const std::size_t avail = buffer_.used - consumed_;
      const std::size_t chunk = std::min(avail, len - done);
      if (hold_ != nullptr || tm.try_retain_static_buffer(connection)) {
        out.push_back(BorrowedBlock{
            std::span<const std::byte>(buffer_.memory.data() + consumed_,
                                       chunk),
            hold_for(connection, tm)});
      } else {
        // Retention denied (lending this buffer out would starve the
        // sender's flow-control window): stage the chunk through an owned
        // copy so the protocol slot can return promptly.
        MAD2_TRACE_EVENT(obs::Category::kBmm, "bmm.borrow_denied", nullptr,
                         chunk);
        connection.node().charge_memcpy(chunk);
        auto owned = std::make_shared<std::vector<std::byte>>(chunk);
        std::memcpy(owned->data(), buffer_.memory.data() + consumed_, chunk);
        const std::span<const std::byte> view(*owned);
        out.push_back(BorrowedBlock{view, std::move(owned)});
      }
      consumed_ += chunk;
      done += chunk;
      if (consumed_ == buffer_.used) release(connection, tm);
    }
    if (rmode == ReceiveMode::kExpress && have_buffer_) {
      MAD2_CHECK(consumed_ == buffer_.used,
                 "asymmetric pack/unpack around receive_EXPRESS block");
      release(connection, tm);
    }
    return true;
  }

  void checkout(Connection& connection, Tm& tm) override {
    // Static-copy extraction is always immediate; nothing is deferred.
    // A leftover partially-consumed buffer would indicate asymmetry.
    if (have_buffer_) {
      MAD2_CHECK(consumed_ == buffer_.used,
                 "message ended with unconsumed static-buffer data "
                 "(asymmetric pack/unpack sequences)");
      release(connection, tm);
    }
  }

 private:
  // Keeps a lent-out buffer alive past release(): the last BorrowedBlock
  // dropped returns it to the TM. At teardown the simulator discards
  // fiber stacks without unwinding and channel objects die on the main
  // thread, where virtual time is over and release could block on credit
  // traffic — the protocol slot is abandoned there instead.
  struct Hold {
    Connection* connection;
    Tm* tm;
    StaticBuffer buffer;
    Hold(Connection* connection, Tm* tm, StaticBuffer buffer)
        : connection(connection), tm(tm), buffer(buffer) {}
    Hold(const Hold&) = delete;
    Hold& operator=(const Hold&) = delete;
    ~Hold() {
      if (connection->simulator().current() == nullptr) return;
      tm->release_retained_static_buffer(*connection, buffer);
    }
  };

  void obtain(Connection& connection, Tm& tm) {
    buffer_ = tm.receive_static_buffer(connection);
    consumed_ = 0;
    have_buffer_ = true;
  }

  std::shared_ptr<Hold> hold_for(Connection& connection, Tm& tm) {
    if (hold_ == nullptr) {
      hold_ = std::make_shared<Hold>(&connection, &tm, buffer_);
    }
    return hold_;
  }

  void release(Connection& connection, Tm& tm) {
    if (hold_ == nullptr) {
      tm.release_static_buffer(connection, buffer_);
    }
    hold_.reset();  // borrowed: the views own the release now
    have_buffer_ = false;
    buffer_ = StaticBuffer{};
    consumed_ = 0;
  }

  bool have_buffer_ = false;
  StaticBuffer buffer_;
  std::size_t consumed_ = 0;
  std::shared_ptr<Hold> hold_;
};

}  // namespace

std::unique_ptr<SendBmm> make_send_bmm(BmmKind kind) {
  switch (kind) {
    case BmmKind::kEager:
      return std::make_unique<EagerSendBmm>();
    case BmmKind::kGroup:
      return std::make_unique<GroupSendBmm>();
    case BmmKind::kLater:
      return std::make_unique<LaterSendBmm>();
    case BmmKind::kStaticCopy:
      return std::make_unique<StaticCopySendBmm>();
  }
  MAD2_CHECK(false, "unknown BmmKind");
}

std::unique_ptr<RecvBmm> make_recv_bmm(BmmKind kind) {
  switch (kind) {
    case BmmKind::kEager:
      return std::make_unique<EagerRecvBmm>();
    case BmmKind::kGroup:
      return std::make_unique<GroupRecvBmm>();
    case BmmKind::kLater:
      return std::make_unique<LaterRecvBmm>();
    case BmmKind::kStaticCopy:
      return std::make_unique<StaticCopyRecvBmm>();
  }
  MAD2_CHECK(false, "unknown BmmKind");
}

}  // namespace mad2::mad
