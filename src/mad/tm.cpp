#include "mad/tm.hpp"

#include "util/status.hpp"

namespace mad2::mad {

void Tm::send_buffer_group(
    Connection& connection,
    const std::vector<std::span<const std::byte>>& group) {
  for (const auto& buffer : group) send_buffer(connection, buffer);
}

void Tm::receive_sub_buffer_group(
    Connection& connection, const std::vector<std::span<std::byte>>& group) {
  for (const auto& buffer : group) receive_buffer(connection, buffer);
}

StaticBuffer Tm::obtain_static_buffer(Connection&) {
  MAD2_CHECK(false, "this TM does not provide static buffers");
}

void Tm::send_static_buffer(Connection&, StaticBuffer&) {
  MAD2_CHECK(false, "this TM does not provide static buffers");
}

StaticBuffer Tm::receive_static_buffer(Connection&) {
  MAD2_CHECK(false, "this TM does not provide static buffers");
}

void Tm::release_static_buffer(Connection&, StaticBuffer&) {
  MAD2_CHECK(false, "this TM does not provide static buffers");
}

}  // namespace mad2::mad
