// Text configuration for sessions. The original PM2/Madeleine deployments
// described clusters in configuration files; this parser accepts a small
// line-based format:
//
//   # comment
//   nodes 4
//   network myri0 bip   0 1 2 3
//   network sci0  sisci 0 1
//   channel ch_bulk myri0
//   channel ch_ctl  sci0 paranoid
//   rails   bulk ch_bulk ch_eth threshold=65536
//
// Directives:
//   nodes N                       total node count (required, first)
//   network NAME KIND NODE...     KIND in {bip, sisci, tcp, via, sbp, ib}
//       ib networks take trailing adapter knobs after the node list:
//       qp_depth=N (send-queue depth, doubles as the eager credit
//       window) and regcache_capacity=N (registration-cache entries per
//       port; 0 registers/deregisters on every access — the ablation
//       switch of bench/abl_ib). See net/ib.hpp and docs/RDMA.md.
//   channel NAME NETWORK [paranoid] [eager_cutoff=N]
//       eager_cutoff= (ib channels only, >= 64) splits eager copies from
//       RDMA rendezvous at N bytes (see mad/ib_options.hpp)
//   rails NAME CHANNEL CHANNEL... [threshold=N]
//       stripe large blocks of the first (primary) channel across all
//       members (see mad/rail_set.hpp); members must be non-paranoid,
//       pairwise on distinct networks, spanning the same node set
//   trace [categories=C,C...] [ring_kb=N] [channels=NAME,NAME...]
//       enable madtrace for sessions built from this config: categories
//       from {switch, bmm, tm, net, fwd, rail, all} (default all),
//       ring_kb sizes the event ring, channels= restricts Switch-level
//       events to the named channels (see obs/trace.hpp). The MAD2_TRACE
//       environment variable overrides this stanza.
//   congestion [window=N] [min_window=N] [max_window=N] [gain=F]
//              [decrease=F] [backlog=F] [quantum=N] [gateway_queue=N]
//       enable end-to-end congestion windows and weighted-fair flow
//       scheduling (see mad/congestion.hpp and docs/CONGESTION.md):
//       window= seeds the per-flow window in packets (0/omitted derives
//       a bandwidth-delay product from the driver's bandwidth hint),
//       clamped to [min_window, max_window]; gain/decrease/backlog tune
//       the AIMD loop (additive increase per delivered window, cut
//       factor in (0,1), congestion threshold > 1 relative to the delay
//       floor); quantum= is the DRR byte credit per scheduling round and
//       gateway_queue= the gateway forwarding-queue depth in packets.
//       Absent stanza = everything off (the default fast path).
//   topology [salt=N] [replay_quota=N]
//       enable resilient multi-gateway routing for the session's virtual
//       channels (see mad/hostdb.hpp and docs/ROUTING.md): consecutive
//       hops may share a *set* of gateways, flows spread across the
//       healthy ones by deterministic hash (salt= perturbs the spread),
//       and a gateway death re-routes and replays unconfirmed packets.
//       replay_quota= bounds the per-flow retain buffer in packets
//       (default 1024; must be positive — a zero quota could never
//       admit a packet). Absent stanza = single-gateway routing with no
//       per-packet sequencing overhead (the default fast path).
//
// Errors come back as INVALID_ARGUMENT with the line number.
#pragma once

#include <string_view>

#include "mad/session.hpp"
#include "util/status.hpp"

namespace mad2::mad {

Result<SessionConfig> parse_session_config(std::string_view text);

}  // namespace mad2::mad
