#include "mad/pmm_factory.hpp"

#include "mad/pmm_bip.hpp"
#include "mad/pmm_ib.hpp"
#include "mad/pmm_sbp.hpp"
#include "mad/pmm_sisci.hpp"
#include "mad/pmm_tcp.hpp"
#include "mad/pmm_via.hpp"
#include "mad/session.hpp"

namespace mad2::mad {

std::unique_ptr<Pmm> make_pmm(ChannelEndpoint& endpoint) {
  switch (endpoint.channel().network().def.kind) {
    case NetworkKind::kBip: {
      const auto& overrides = endpoint.channel().def().bip_options;
      return std::make_unique<BipPmm>(
          endpoint, overrides.value_or(BipPmmOptions{}));
    }
    case NetworkKind::kSisci: {
      const auto& overrides = endpoint.channel().def().sci_options;
      return std::make_unique<SciPmm>(
          endpoint, overrides.value_or(SciPmmOptions{}));
    }
    case NetworkKind::kTcp:
      return std::make_unique<TcpPmm>(endpoint);
    case NetworkKind::kVia:
      return std::make_unique<ViaPmm>(endpoint);
    case NetworkKind::kSbp:
      return std::make_unique<SbpPmm>(endpoint);
    case NetworkKind::kIb: {
      const auto& overrides = endpoint.channel().def().ib_options;
      return std::make_unique<IbPmm>(
          endpoint, overrides.value_or(IbPmmOptions{}));
    }
    case NetworkKind::kCustom:
      return endpoint.channel().network().def.custom_pmm(endpoint);
  }
  MAD2_CHECK(false, "unknown network kind");
}

}  // namespace mad2::mad
