// Buffer Management Modules (paper Section 3.4).
//
// A BMM implements one generic, protocol-independent buffer policy; the
// Switch picks the BMM per packed block from (TM, send mode, receive mode)
// via select_bmm_kind() — a pure function, so sender and receiver replay
// identical decisions from their (mandatorily symmetric) pack/unpack
// sequences without any on-the-wire mode information (Section 2.2: messages
// are not self-described).
//
// The four policies:
//   kEager      dynamic buffers, sent/received immediately (send_SAFER, or
//               anything needing immediate handling)
//   kGroup      dynamic buffers aggregated and flushed as one
//               scatter/gather group at commit (send_CHEAPER +
//               receive_CHEAPER on TMs that benefit from grouping)
//   kLater      blocks recorded by reference and read only at commit
//               (send_LATER semantics)
//   kStaticCopy user data copied through protocol buffers
//               (obtain/release_static_buffer TMs: BIP-short, VIA-short)
#pragma once

#include <memory>
#include <vector>

#include "mad/tm.hpp"
#include "mad/types.hpp"

namespace mad2::mad {

class Connection;

enum class BmmKind : std::uint8_t { kEager, kGroup, kLater, kStaticCopy };

/// The Switch's BMM policy. Pure function — both sides replay it.
BmmKind select_bmm_kind(const Tm& tm, SendMode smode, ReceiveMode rmode);

/// Send-side policy instance. One per (connection, TM, kind); holds the
/// in-flight aggregation state for the current message.
class SendBmm {
 public:
  virtual ~SendBmm() = default;
  virtual void pack(Connection& connection, Tm& tm,
                    std::span<const std::byte> data, SendMode smode,
                    ReceiveMode rmode) = 0;
  /// Flush everything delayed to the TM (the paper's *commit*).
  virtual void commit(Connection& connection, Tm& tm) = 0;
};

/// Receive-side policy instance (mirror image).
class RecvBmm {
 public:
  virtual ~RecvBmm() = default;
  virtual void unpack(Connection& connection, Tm& tm,
                      std::span<std::byte> out, SendMode smode,
                      ReceiveMode rmode) = 0;
  /// Complete all deferred extractions (the paper's *checkout*).
  virtual void checkout(Connection& connection, Tm& tm) = 0;

  /// Zero-copy variant of unpack: instead of copying the next `len` bytes
  /// into user memory, append views of the protocol buffers holding them
  /// to `out` (one BorrowedBlock per protocol-buffer chunk, so the block
  /// boundaries replayed from the sender's sequence are preserved). Only
  /// the static-copy BMM supports this; others return false without
  /// consuming anything. The stream advances exactly as a copying unpack
  /// of `len` bytes would, so borrow and copy calls may be mixed freely.
  virtual bool unpack_borrow(Connection&, Tm&, std::size_t /*len*/,
                             ReceiveMode /*rmode*/,
                             std::vector<BorrowedBlock>& /*out*/) {
    return false;
  }
};

std::unique_ptr<SendBmm> make_send_bmm(BmmKind kind);
std::unique_ptr<RecvBmm> make_recv_bmm(BmmKind kind);

}  // namespace mad2::mad
