#include "mad/pmm_sisci.hpp"

#include <algorithm>
#include <cstring>

#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {

SciPmm::SciPmm(ChannelEndpoint& endpoint, SciPmmOptions options)
    : endpoint_(endpoint),
      options_(options),
      short_tm_(this),
      pio_tm_(this, /*dma=*/false),
      dma_tm_(this, /*dma=*/true) {
  NetworkInstance& network = endpoint_.channel().network();
  MAD2_CHECK(network.sci != nullptr, "SciPmm on a non-SISCI network");
  port_ = &network.sci->port(network.port(endpoint_.local()));
}

std::uint64_t SciPmm::short_slot_offset(std::uint64_t index) const {
  return index * (kHeaderBytes + options_.short_capacity);
}

std::uint64_t SciPmm::bulk_buffer_offset(std::uint64_t index) const {
  return short_slot_offset(options_.short_slots) +
         index * (kHeaderBytes + options_.bulk_capacity);
}

std::uint64_t SciPmm::ring_bytes() const {
  return bulk_buffer_offset(options_.bulk_buffers);
}

std::unique_ptr<Pmm::ConnState> SciPmm::make_conn_state(
    std::uint32_t remote) {
  auto state = std::make_unique<State>();
  state->remote = remote;
  state->remote_port = endpoint_.channel().network().port(remote);
  state->rx_ring = port_->create_segment(ring_bytes());
  state->tx_feedback = port_->create_segment(8);  // u32 short, u32 bulk
  states_[remote] = state.get();
  peer_order_.push_back(remote);
  return state;
}

void SciPmm::finish_setup() {
  // Resolve the segments our peers created for traffic in our direction.
  // (The real library exchanges these ids over a bootstrap TCP channel.)
  for (auto& [remote, state] : states_) {
    auto& peer_pmm = static_cast<SciPmm&>(
        endpoint_.channel().endpoint(remote).pmm());
    const SciPmm::State& peer_state =
        *peer_pmm.states_.at(endpoint_.local());
    state->tx_ring = port_->connect(state->remote_port, peer_state.rx_ring);
    state->rx_feedback =
        port_->connect(state->remote_port, peer_state.tx_feedback);
  }

  // Fastpath: consumed-counter feedback accumulates for the node's
  // progress tick instead of one PIO write per consumed unit.
  const SessionConfig& config = endpoint_.session().config();
  if (config.fastpath.has_value() && config.fastpath->defer_sci_feedback) {
    engine_ = endpoint_.session().progress_engine(endpoint_.local());
    doorbell_ = engine_->register_client(this, [](void* ctx) {
      static_cast<SciPmm*>(ctx)->flush_owed_feedback();
    });
    defer_feedback_ = true;
  }
}

void SciPmm::flush_owed_feedback() {
  for (auto& [remote, state] : states_) {
    if (state->short_fb_written < state->short_rcvd) {
      // Capture-then-write: pio_write can yield, and a concurrent inline
      // flush must not double-write or regress the counter.
      const std::uint64_t upto = state->short_rcvd;
      state->short_fb_written = upto;
      std::byte counter[4];
      store_u32(counter, static_cast<std::uint32_t>(upto));
      port_->pio_write(state->rx_feedback, 0, counter);
    }
    if (state->bulk_fb_written < state->bulk_rcvd) {
      const std::uint64_t upto = state->bulk_rcvd;
      state->bulk_fb_written = upto;
      std::byte counter[4];
      store_u32(counter, static_cast<std::uint32_t>(upto));
      port_->pio_write(state->rx_feedback, 4, counter);
    }
  }
}

Tm& SciPmm::select_tm(std::size_t len, SendMode, ReceiveMode) {
  if (options_.enable_dma && len >= options_.dma_min_bytes) return dma_tm_;
  if (len <= options_.short_capacity) return short_tm_;
  return pio_tm_;
}

std::optional<std::vector<std::size_t>> SciPmm::selection_breakpoints()
    const {
  std::vector<std::size_t> breaks{options_.short_capacity};
  // The DMA cutoff is `len >= dma_min_bytes`, i.e. the verdict changes
  // between len <= dma_min_bytes - 1 and anything larger.
  if (options_.enable_dma && options_.dma_min_bytes > 0) {
    breaks.push_back(options_.dma_min_bytes - 1);
  }
  return breaks;
}

bool SciPmm::incoming_ready(const State& state) {
  auto ring = port_->segment_memory(state.rx_ring);
  const std::uint64_t short_off =
      short_slot_offset(state.short_rcvd % options_.short_slots);
  if (load_u32(ring.data() + short_off) ==
      static_cast<std::uint32_t>(state.short_rcvd + 1)) {
    return true;
  }
  const std::uint64_t bulk_off =
      bulk_buffer_offset(state.bulk_rcvd % options_.bulk_buffers);
  return load_u32(ring.data() + bulk_off) ==
         static_cast<std::uint32_t>(state.bulk_rcvd + 1);
}

std::uint32_t SciPmm::wait_incoming() {
  // About to sleep until a peer writes: owed feedback goes out first (the
  // peer may need those credits to produce the very unit we wait for).
  // Skipped when a unit already arrived — then nobody is starved and the
  // counters ride the next progress tick.
  if (defer_feedback_) {
    bool ready = false;
    for (const std::uint32_t remote : peer_order_) {
      if (incoming_ready(*states_.at(remote))) {
        ready = true;
        break;
      }
    }
    if (!ready) flush_owed_feedback();
  }
  std::uint32_t found = 0;
  port_->wait_delivery([&] {
    for (std::size_t k = 0; k < peer_order_.size(); ++k) {
      const std::size_t idx = (rr_next_ + k) % peer_order_.size();
      if (incoming_ready(*states_.at(peer_order_[idx]))) {
        found = peer_order_[idx];
        rr_next_ = (idx + 1) % peer_order_.size();
        return true;
      }
    }
    return false;
  });
  return found;
}

// --- send/receive units ----------------------------------------------------

void SciPmm::send_short_unit(Connection& connection,
                             std::span<const std::byte> data) {
  auto& state = connection.state<State>();
  MAD2_CHECK(data.size() <= options_.short_capacity, "short unit too large");
  MAD2_TRACE_SPAN(span, obs::Category::kTm, "sci.send_short");
  span.args(data.size());

  // Flow control: wait until the target slot has been consumed. When the
  // window is full, owed feedback flushes first — the peer may be blocked
  // on our counters in the opposite direction.
  auto feedback = port_->segment_memory(state.tx_feedback);
  const auto slot_free = [&] {
    return state.short_sent - load_u32(feedback.data()) <
           options_.short_slots;
  };
  if (!slot_free()) maybe_flush_owed();
  port_->wait_segment(state.tx_feedback, slot_free);

  // One PIO transaction: header + payload assembled in a scratch buffer.
  // (Packet delivery is atomic in the driver, so writing the header first
  // is safe; it becomes visible only with the payload.)
  std::vector<std::byte> scratch(kHeaderBytes + data.size());
  store_u32(scratch.data(), static_cast<std::uint32_t>(state.short_sent + 1));
  store_u32(scratch.data() + 4, static_cast<std::uint32_t>(data.size()));
  connection.node().charge_memcpy(data.size());
  std::memcpy(scratch.data() + kHeaderBytes, data.data(), data.size());
  port_->pio_write(state.tx_ring,
                   short_slot_offset(state.short_sent % options_.short_slots),
                   scratch);
  ++state.short_sent;
}

void SciPmm::recv_short_unit(Connection& connection,
                             std::span<std::byte> out) {
  auto& state = connection.state<State>();
  auto ring = port_->segment_memory(state.rx_ring);
  const std::uint64_t offset =
      short_slot_offset(state.short_rcvd % options_.short_slots);
  const auto arrived = [&] {
    return load_u32(ring.data() + offset) ==
           static_cast<std::uint32_t>(state.short_rcvd + 1);
  };
  if (!arrived()) maybe_flush_owed();
  port_->wait_segment(state.rx_ring, arrived);
  const std::uint32_t len = load_u32(ring.data() + offset + 4);
  MAD2_CHECK(len == out.size(),
             "short unit size mismatch: asymmetric pack/unpack sequences");
  connection.node().charge_memcpy(len);
  std::memcpy(out.data(), ring.data() + offset + kHeaderBytes, len);
  ++state.short_rcvd;

  if (defer_feedback_) {
    // Deferred: the progress tick writes the counter; ring() is a bit set
    // plus one notify while a flush is already pending.
    engine_->ring(doorbell_);
    return;
  }
  // Legacy path: return slot credits in batches.
  if (state.short_rcvd - state.short_fb_written >=
      options_.short_feedback_batch) {
    std::byte counter[4];
    store_u32(counter, static_cast<std::uint32_t>(state.short_rcvd));
    port_->pio_write(state.rx_feedback, 0, counter);
    state.short_fb_written = state.short_rcvd;
  }
}

void SciPmm::send_bulk(Connection& connection,
                       std::span<const std::byte> data, bool dma) {
  auto& state = connection.state<State>();
  MAD2_TRACE_SPAN(span, obs::Category::kTm, "sci.send_bulk",
                  dma ? "dma" : "pio");
  span.args(data.size());
  auto feedback = port_->segment_memory(state.tx_feedback);
  std::size_t done = 0;
  while (done < data.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(data.size() - done, options_.bulk_capacity);
    // Dual buffering: block only when all ring buffers are in flight.
    const auto buffer_free = [&] {
      return state.bulk_sent - load_u32(feedback.data() + 4) <
             options_.bulk_buffers;
    };
    if (!buffer_free()) maybe_flush_owed();
    port_->wait_segment(state.tx_feedback, buffer_free);
    const std::uint64_t offset =
        bulk_buffer_offset(state.bulk_sent % options_.bulk_buffers);
    const auto piece = data.subspan(done, chunk);
    // Payload straight from user memory (no local copy), header last so
    // the receiver only sees complete buffers.
    std::byte header[kHeaderBytes];
    store_u32(header, static_cast<std::uint32_t>(state.bulk_sent + 1));
    store_u32(header + 4, static_cast<std::uint32_t>(chunk));
    if (dma) {
      port_->dma_write(state.tx_ring, offset + kHeaderBytes, piece);
      port_->dma_write(state.tx_ring, offset, header);
    } else {
      port_->pio_write(state.tx_ring, offset + kHeaderBytes, piece);
      port_->pio_write(state.tx_ring, offset, header);
    }
    ++state.bulk_sent;
    done += chunk;
  }
}

void SciPmm::recv_bulk(Connection& connection, std::span<std::byte> out) {
  auto& state = connection.state<State>();
  MAD2_TRACE_SPAN(span, obs::Category::kTm, "sci.recv_bulk");
  span.args(out.size());
  auto ring = port_->segment_memory(state.rx_ring);
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t expected =
        std::min<std::size_t>(out.size() - done, options_.bulk_capacity);
    const std::uint64_t offset =
        bulk_buffer_offset(state.bulk_rcvd % options_.bulk_buffers);
    const auto arrived = [&] {
      return load_u32(ring.data() + offset) ==
             static_cast<std::uint32_t>(state.bulk_rcvd + 1);
    };
    if (!arrived()) maybe_flush_owed();
    port_->wait_segment(state.rx_ring, arrived);
    const std::uint32_t len = load_u32(ring.data() + offset + 4);
    MAD2_CHECK(len == expected,
               "bulk unit size mismatch: asymmetric pack/unpack sequences");
    connection.node().charge_memcpy(len);
    std::memcpy(out.data() + done, ring.data() + offset + kHeaderBytes, len);
    ++state.bulk_rcvd;
    done += len;
    if (defer_feedback_) {
      // The next iteration's flush-before-block (or the progress tick,
      // whichever comes first) returns the buffer — the 2-deep pipeline
      // stays full without a PIO write per buffer.
      engine_->ring(doorbell_);
      continue;
    }
    // Legacy path: prompt per-buffer feedback keeps the pipeline moving.
    std::byte counter[4];
    store_u32(counter, static_cast<std::uint32_t>(state.bulk_rcvd));
    port_->pio_write(state.rx_feedback, 4, counter);
    state.bulk_fb_written = state.bulk_rcvd;
  }
}

// ------------------------------------------------------------------- TMs ---

void SciShortTm::send_buffer(Connection& connection,
                             std::span<const std::byte> data) {
  if (data.empty()) return;
  pmm_->send_short_unit(connection, data);
}

void SciShortTm::receive_buffer(Connection& connection,
                                std::span<std::byte> out) {
  if (out.empty()) return;
  pmm_->recv_short_unit(connection, out);
}

void SciBulkTm::send_buffer(Connection& connection,
                            std::span<const std::byte> data) {
  pmm_->send_bulk(connection, data, dma_);
}

void SciBulkTm::receive_buffer(Connection& connection,
                               std::span<std::byte> out) {
  pmm_->recv_bulk(connection, out);
}


double SciPmm::bandwidth_hint_mbs() const {
  const net::SciParams& p = endpoint_.channel().network().sci->params();
  if (options_.enable_dma) {
    // Bulk blocks ride the (D310: poor) DMA engine above dma_min_bytes.
    return std::min(p.fabric.wire_mbs, p.dma_engine_mbs);
  }
  // PIO drain: CPU stores through the mapped remote window.
  return std::min(p.fabric.wire_mbs,
                  endpoint_.node().params().pci_pio_mbs);
}

}  // namespace mad2::mad
