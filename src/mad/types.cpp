#include "mad/types.hpp"

namespace mad2::mad {

std::string_view to_string(SendMode mode) {
  switch (mode) {
    case SendMode::kSafer:
      return "send_SAFER";
    case SendMode::kLater:
      return "send_LATER";
    case SendMode::kCheaper:
      return "send_CHEAPER";
  }
  return "send_?";
}

std::string_view to_string(ReceiveMode mode) {
  switch (mode) {
    case ReceiveMode::kExpress:
      return "receive_EXPRESS";
    case ReceiveMode::kCheaper:
      return "receive_CHEAPER";
  }
  return "receive_?";
}

}  // namespace mad2::mad
