#include "mad/pmm_bip.hpp"

#include <algorithm>
#include <cstring>

#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {

// ----------------------------------------------------------------- BipPmm ---

BipPmm::BipPmm(ChannelEndpoint& endpoint, BipPmmOptions options)
    : endpoint_(endpoint),
      options_(options),
      short_tm_(this),
      long_tm_(this) {
  NetworkInstance& network = endpoint_.channel().network();
  MAD2_CHECK(network.bip != nullptr, "BipPmm on a non-BIP network");
  MAD2_CHECK(options_.credit_batch * 2 <= options_.credits,
             "credit batching must not exhaust the window");
  MAD2_CHECK(options_.credits <= network.bip->params().short_host_slots / 2,
             "credit window exceeds what the BIP buffer pool can back");
  port_ = &network.bip->port(network.port(endpoint_.local()));
  incoming_wq_ =
      std::make_unique<sim::WaitQueue>(&endpoint_.session().simulator());
}

std::uint32_t BipPmm::short_capacity() const {
  return endpoint_.channel().network().bip->params().short_max_bytes;
}

std::uint32_t BipPmm::data_tag(std::uint32_t sender_port) const {
  MAD2_CHECK(sender_port < kMaxPorts, "port beyond BIP tag space");
  return endpoint_.channel().id() * 2 * kMaxPorts + sender_port;
}

std::uint32_t BipPmm::ctrl_tag(std::uint32_t sender_port) const {
  MAD2_CHECK(sender_port < kMaxPorts, "port beyond BIP tag space");
  return endpoint_.channel().id() * 2 * kMaxPorts + kMaxPorts + sender_port;
}

std::unique_ptr<Pmm::ConnState> BipPmm::make_conn_state(
    std::uint32_t remote) {
  auto state = std::make_unique<State>(&endpoint_.session().simulator());
  state->remote = remote;
  state->remote_port = endpoint_.channel().network().port(remote);
  state->credits = options_.credits;
  states_[remote] = state.get();
  by_port_[state->remote_port] = remote;
  peer_order_.push_back(remote);
  return state;
}

void BipPmm::finish_setup() {
  // Pre-size the pools so the steady state never allocates: the credit
  // window caps the slots a peer can have in flight or checked out at
  // `credits` (retained borrows stay under credits/2 on top), and staging
  // buffers are released right after each send. Growth past these sizes
  // is still possible and is then counted against the node.
  const std::size_t peers = states_.size();
  const std::size_t slots = peers * options_.credits * 2;
  slot_slab_.resize(slots);
  slot_free_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    slot_free_.push_back(static_cast<std::uint32_t>(i));
  }
  const std::size_t stages = peers * 4;
  staging_.reserve(stages);
  staging_free_.reserve(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    staging_.emplace_back(short_capacity());
    staging_free_.push_back(i);
  }

  // Fastpath: owed credits accumulate for the node's progress tick.
  const SessionConfig& config = endpoint_.session().config();
  if (config.fastpath.has_value() && config.fastpath->defer_bip_credits) {
    engine_ = endpoint_.session().progress_engine(endpoint_.local());
    doorbell_ = engine_->register_client(this, [](void* ctx) {
      static_cast<BipPmm*>(ctx)->flush_owed_credits();
    });
    defer_credits_ = true;
  }

  // The pump needs every connection's state; spawn it only now.
  endpoint_.session().simulator().spawn_daemon(
      "mad.bip.pump." + endpoint_.channel().name() + "." +
          std::to_string(endpoint_.local()),
      [this] { pump_loop(); });
}

void BipPmm::flush_owed_credits() {
  for (auto& [remote, state] : states_) {
    if (state->credit_owed == 0) continue;
    // Zero before sending: send_ctrl can block, and the inline
    // flush-before-block safety net must not double-return these.
    const std::uint64_t owed = state->credit_owed;
    state->credit_owed = 0;
    send_ctrl(*state, CtrlKind::kCredit, owed);
  }
}

Tm& BipPmm::select_tm(std::size_t len, SendMode, ReceiveMode) {
  if (len <= short_capacity()) return short_tm_;
  return long_tm_;
}

void BipPmm::pump_loop() {
  std::vector<std::uint32_t> tags;
  for (const auto& [port, remote] : by_port_) {
    tags.push_back(data_tag(port));
    tags.push_back(ctrl_tag(port));
  }
  if (tags.empty()) return;

  const std::uint32_t channel_id = endpoint_.channel().id();
  const std::uint32_t ctrl_base = channel_id * 2 * kMaxPorts + kMaxPorts;
  const std::uint32_t data_base = channel_id * 2 * kMaxPorts;

  for (;;) {
    std::uint32_t tag = port_->wait_short_multi(tags);
    // Batched drain: after the blocking wait delivers one packet, keep
    // consuming everything already queued on any of our tags before
    // sleeping again — a burst of N packets costs one pump wakeup, not N.
    // Per-packet handling (and its virtual-time charges) is unchanged.
    for (;;) {
      net::BipShortSlot slot = port_->recv_short(tag);
      const bool is_ctrl = tag >= ctrl_base;
      const std::uint32_t sender_port =
          is_ctrl ? tag - ctrl_base : tag - data_base;
      auto remote_it = by_port_.find(sender_port);
      MAD2_CHECK(remote_it != by_port_.end(), "packet from unknown port");
      State& state = *states_.at(remote_it->second);

      if (is_ctrl) {
        MAD2_CHECK(slot.data.size() == 9, "malformed BIP control packet");
        const auto kind = static_cast<CtrlKind>(slot.data[0]);
        const std::uint64_t value = load_u64(slot.data.data() + 1);
        port_->release_short(slot);
        switch (kind) {
          case CtrlKind::kCredit:
            state.credits += value;
            state.credits_wq.notify_all();
            break;
          case CtrlKind::kReq:
            state.reqs.push_back(value);
            state.recv_wq.notify_all();
            break;
          case CtrlKind::kAck:
            ++state.acks;
            state.ack_wq.notify_all();
            break;
        }
      } else {
        state.data_slots.push_back(slot);
        state.recv_wq.notify_all();
      }
      incoming_wq_->notify_all();

      bool more = false;
      for (std::uint32_t candidate : tags) {
        if (port_->short_pending(candidate)) {
          tag = candidate;
          more = true;
          break;
        }
      }
      if (!more) break;
    }
  }
}

std::uint32_t BipPmm::wait_incoming() {
  for (;;) {
    for (std::size_t k = 0; k < peer_order_.size(); ++k) {
      const std::size_t idx = (rr_next_ + k) % peer_order_.size();
      State& state = *states_.at(peer_order_[idx]);
      if (!state.data_slots.empty() || !state.reqs.empty()) {
        rr_next_ = (idx + 1) % peer_order_.size();
        return peer_order_[idx];
      }
    }
    incoming_wq_->wait();
  }
}

void BipPmm::send_ctrl(State& state, CtrlKind kind, std::uint64_t value) {
  std::array<std::byte, 9> packet;
  packet[0] = static_cast<std::byte>(kind);
  store_u64(packet.data() + 1, value);
  const std::uint32_t my_port =
      endpoint_.channel().network().port(endpoint_.local());
  port_->send_short(state.remote_port, ctrl_tag(my_port), packet);
}

StaticBuffer BipPmm::obtain_staging() {
  std::size_t index;
  if (!staging_free_.empty()) {
    index = staging_free_.back();
    staging_free_.pop_back();
  } else {
    // Pool exhausted (never in steady state — finish_setup pre-sizes it):
    // an honest heap allocation, charged to the node.
    index = staging_.size();
    staging_.emplace_back(short_capacity());
    endpoint_.node().count_alloc();
  }
  return StaticBuffer{std::span<std::byte>(staging_[index]), 0,
                      /*handle=*/index + 1};
}

void BipPmm::release_staging(StaticBuffer& buffer) {
  MAD2_CHECK(buffer.handle != 0, "releasing a non-staging buffer");
  staging_free_.push_back(buffer.handle - 1);
  buffer = StaticBuffer{};
}

StaticBuffer BipPmm::wrap_slot(net::BipShortSlot slot) {
  std::uint32_t index;
  if (!slot_free_.empty()) {
    index = slot_free_.back();
    slot_free_.pop_back();
  } else {
    // Slab exhausted (never in steady state — the credit window bounds
    // checked-out slots): grow, and charge the allocation to the node.
    index = static_cast<std::uint32_t>(slot_slab_.size());
    slot_slab_.emplace_back();
    endpoint_.node().count_alloc();
  }
  slot_slab_[index] = slot;
  StaticBuffer buffer;
  // The slot's backing store is owned by the driver until release; the
  // receive BMM only reads from it, so the const_cast is contained here.
  buffer.memory = std::span<std::byte>(
      const_cast<std::byte*>(slot.data.data()), slot.data.size());
  buffer.used = slot.data.size();
  buffer.handle = index + 1;
  return buffer;
}

net::BipShortSlot BipPmm::unwrap_slot(const StaticBuffer& buffer) {
  MAD2_CHECK(buffer.handle != 0 && buffer.handle <= slot_slab_.size(),
             "unknown static buffer handle");
  const std::size_t index = buffer.handle - 1;
  net::BipShortSlot slot = slot_slab_[index];
  MAD2_CHECK(slot.data.data() != nullptr, "stale static buffer handle");
  slot_slab_[index] = net::BipShortSlot{};
  slot_free_.push_back(static_cast<std::uint32_t>(index));
  return slot;
}

// ------------------------------------------------------------- BipShortTm ---

void BipShortTm::send_buffer(Connection&, std::span<const std::byte>) {
  MAD2_CHECK(false, "BIP short TM only moves static buffers");
}

void BipShortTm::receive_buffer(Connection&, std::span<std::byte>) {
  MAD2_CHECK(false, "BIP short TM only moves static buffers");
}

StaticBuffer BipShortTm::obtain_static_buffer(Connection&) {
  return pmm_->obtain_staging();
}

void BipShortTm::send_static_buffer(Connection& connection,
                                    StaticBuffer& buffer) {
  auto& state = connection.state<BipPmm::State>();
  // Credit-based flow control: never exceed the receiver's preallocated
  // buffer pool (the paper's short-TM algorithm).
  if (state.credits == 0) {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "bip.credit_wait");
    wait.args(buffer.used);
    while (state.credits == 0) state.credits_wq.wait();
  }
  --state.credits;
  MAD2_TRACE_EVENT(obs::Category::kTm, "bip.send_short", nullptr,
                   buffer.used, state.credits);
  const std::uint32_t my_port =
      pmm_->endpoint().channel().network().port(pmm_->endpoint().local());
  pmm_->port().send_short(state.remote_port, pmm_->data_tag(my_port),
                          buffer.memory.subspan(0, buffer.used));
  pmm_->release_staging(buffer);
}

StaticBuffer BipShortTm::receive_static_buffer(Connection& connection) {
  auto& state = connection.state<BipPmm::State>();
  if (state.data_slots.empty() && state.credit_owed > 0) {
    // About to block for the next short: flush owed credits first — the
    // sender may be starved below the batching threshold (retained
    // lent-out slots shrink its window).
    pmm_->send_ctrl(state, BipPmm::CtrlKind::kCredit, state.credit_owed);
    state.credit_owed = 0;
  }
  while (state.data_slots.empty()) state.recv_wq.wait();
  net::BipShortSlot slot = state.data_slots.front();
  state.data_slots.pop_front();
  return pmm_->wrap_slot(slot);
}

void BipShortTm::release_static_buffer(Connection& connection,
                                       StaticBuffer& buffer) {
  auto& state = connection.state<BipPmm::State>();
  net::BipShortSlot slot = pmm_->unwrap_slot(buffer);
  pmm_->port().release_short(slot);
  buffer = StaticBuffer{};
  // Return credits in batches to amortize the control traffic. Fastpath:
  // the progress tick sends one coalesced return per indebted peer; the
  // flush-before-block net in receive_static_buffer covers stragglers.
  if (++state.credit_owed >= pmm_->options().credit_batch) {
    if (pmm_->defer_credits()) {
      pmm_->ring_doorbell();
    } else {
      pmm_->send_ctrl(state, BipPmm::CtrlKind::kCredit, state.credit_owed);
      state.credit_owed = 0;
    }
  }
}

bool BipShortTm::try_retain_static_buffer(Connection& connection) {
  auto& state = connection.state<BipPmm::State>();
  // Every retained slot permanently shrinks the sender's credit window
  // until its views are dropped; lending more than half the window could
  // leave the sender unable to push the data those views are waiting on.
  if (state.retained >= pmm_->options().credits / 2) return false;
  ++state.retained;
  return true;
}

void BipShortTm::release_retained_static_buffer(Connection& connection,
                                                StaticBuffer& buffer) {
  auto& state = connection.state<BipPmm::State>();
  MAD2_CHECK(state.retained > 0,
             "retained-slot release without a matching retain");
  --state.retained;
  release_static_buffer(connection, buffer);
}

// -------------------------------------------------------------- BipLongTm ---

void BipLongTm::send_buffer(Connection& connection,
                            std::span<const std::byte> data) {
  send_buffer_group(connection, {data});
}

void BipLongTm::send_buffer_group(
    Connection& connection,
    const std::vector<std::span<const std::byte>>& group) {
  auto& state = connection.state<BipPmm::State>();
  std::uint64_t total = 0;
  for (const auto& block : group) total += block.size();

  // Rendezvous: announce, wait for the receiver's acknowledgment (BIP
  // long receives must be posted before data arrives), then ship.
  pmm_->send_ctrl(state, BipPmm::CtrlKind::kReq, total);
  {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "bip.rdv_wait");
    wait.args(total, group.size());
    while (state.acks == 0) state.ack_wq.wait();
  }
  --state.acks;

  const std::uint32_t my_port =
      pmm_->endpoint().channel().network().port(pmm_->endpoint().local());
  MAD2_TRACE_SPAN(post, obs::Category::kTm, "bip.send_long");
  post.args(total, group.size());
  for (const auto& block : group) {
    pmm_->port().send_long(state.remote_port, pmm_->data_tag(my_port),
                           block);
  }
}

void BipLongTm::receive_buffer(Connection& connection,
                               std::span<std::byte> out) {
  std::vector<std::span<std::byte>> group{out};
  receive_sub_buffer_group(connection, group);
}

void BipLongTm::receive_sub_buffer_group(
    Connection& connection, const std::vector<std::span<std::byte>>& group) {
  auto& state = connection.state<BipPmm::State>();
  while (state.reqs.empty()) state.recv_wq.wait();
  const std::uint64_t announced = state.reqs.front();
  state.reqs.pop_front();

  std::uint64_t total = 0;
  for (const auto& block : group) total += block.size();
  MAD2_CHECK(announced == total,
             "rendezvous size mismatch: asymmetric pack/unpack sequences");

  // Post every receive, acknowledge, then wait for the data to land
  // directly in the user buffers (zero-copy).
  for (const auto& block : group) {
    pmm_->port().post_recv_long(state.remote_port,
                                pmm_->data_tag(state.remote_port), block);
  }
  pmm_->send_ctrl(state, BipPmm::CtrlKind::kAck, 0);
  MAD2_TRACE_SPAN(land, obs::Category::kTm, "bip.recv_long");
  land.args(total, group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    pmm_->port().wait_recv_long(state.remote_port,
                                pmm_->data_tag(state.remote_port));
  }
}


double BipPmm::bandwidth_hint_mbs() const {
  const net::BipParams& p = endpoint_.channel().network().bip->params();
  // Long messages are NIC DMA transfers: the slower of wire and PCI DMA.
  return std::min(p.fabric.wire_mbs, endpoint_.node().params().pci_dma_mbs);
}

}  // namespace mad2::mad
