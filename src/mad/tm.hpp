// Transmission Module interface (paper Table 2 and Section 3.2).
//
// One TM exists per protocol *sub-interface* (BIP-short, BIP-long,
// SISCI-short-PIO, SISCI-PIO, SISCI-DMA, TCP, VIA-short, VIA-bulk). TMs
// move buffers; the Buffer Management Modules above them decide how user
// data becomes buffers. Mapping to Table 2:
//   send_buffer / send_buffer_group            -> dynamic-buffer sends
//   receive_buffer / receive_sub_buffer_group  -> dynamic-buffer receives
//   obtain_static_buffer / release_static_buffer
//     plus send_static_buffer / receive_static_buffer, which Table 2 folds
//     into the buffer send/receive entries
// Not every TM implements every function (the paper notes the same).
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "mad/types.hpp"

namespace mad2::mad {

class Connection;

class Tm {
 public:
  virtual ~Tm() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// True if this TM works through protocol-provided buffers (BMMs must
  /// copy user data through obtain/send/receive/release_static_buffer).
  [[nodiscard]] virtual bool uses_static_buffers() const { return false; }

  /// True if send_buffer_group is better than per-buffer sends (the group
  /// BMM aggregates when this holds).
  [[nodiscard]] virtual bool supports_groups() const { return true; }

  // --- Dynamic buffers (user memory referenced directly) -----------------
  /// Send one buffer; returns when the user memory is reusable.
  virtual void send_buffer(Connection& connection,
                           std::span<const std::byte> data) = 0;

  /// Send several buffers as one unit (scatter/gather when the protocol
  /// can). Default: sequential send_buffer calls.
  virtual void send_buffer_group(
      Connection& connection,
      const std::vector<std::span<const std::byte>>& group);

  /// Receive one buffer into user memory; returns when the data is there.
  virtual void receive_buffer(Connection& connection,
                              std::span<std::byte> out) = 0;

  /// Receive a (sub-)group of buffers. Default: sequential receive_buffer.
  virtual void receive_sub_buffer_group(
      Connection& connection, const std::vector<std::span<std::byte>>& group);

  // --- Static buffers (protocol memory; only if uses_static_buffers) -----
  /// Get an empty protocol buffer to fill (send side).
  virtual StaticBuffer obtain_static_buffer(Connection& connection);

  /// Transmit a filled protocol buffer (`used` bytes).
  virtual void send_static_buffer(Connection& connection,
                                  StaticBuffer& buffer);

  /// Blocking: the next incoming protocol buffer on this connection.
  virtual StaticBuffer receive_static_buffer(Connection& connection);

  /// Return a received protocol buffer to the protocol (receive side).
  virtual void release_static_buffer(Connection& connection,
                                     StaticBuffer& buffer);

  /// Ask to keep the current receive buffer alive past its consumption
  /// (zero-copy lending, see RecvBmm::unpack_borrow). Flow-controlled TMs
  /// veto this when too many retained buffers would starve the sender's
  /// credit window. A true return reserves the retention and must be
  /// paired with release_retained_static_buffer once the lent buffer is
  /// finally dropped.
  [[nodiscard]] virtual bool try_retain_static_buffer(Connection&) {
    return true;
  }

  /// Release a buffer whose retention was granted by
  /// try_retain_static_buffer.
  virtual void release_retained_static_buffer(Connection& connection,
                                              StaticBuffer& buffer) {
    release_static_buffer(connection, buffer);
  }
};

}  // namespace mad2::mad
