#include "mad/progress.hpp"

#include "util/status.hpp"

namespace mad2::mad {

ProgressEngine::ProgressEngine(sim::Simulator* simulator, std::string name)
    : simulator_(simulator), name_(std::move(name)), wq_(simulator) {}

std::size_t ProgressEngine::register_client(void* ctx, FlushFn fn) {
  MAD2_CHECK(fn != nullptr, "progress client without a flush callback");
  clients_.push_back(Client{ctx, fn, false});
  return clients_.size() - 1;
}

void ProgressEngine::ring(std::size_t client) {
  MAD2_CHECK(client < clients_.size(), "ring on an unregistered doorbell");
  ++counters_.doorbells;
  if (clients_[client].pending) return;
  clients_[client].pending = true;
  if (++pending_count_ == 1) wq_.notify_all();
}

void ProgressEngine::start() {
  if (started_) return;
  started_ = true;
  simulator_->spawn_daemon("mad.progress." + name_, [this] { loop(); });
}

void ProgressEngine::loop() {
  for (;;) {
    while (pending_count_ == 0) wq_.wait();
    ++counters_.ticks;
    // One pass per schedule: every doorbell rung by the fibers that ran
    // since the last tick drains here, so a burst of N messages costs one
    // wakeup and one coalesced flush per client instead of N. A client's
    // callback may block (socket-buffer room, driver hand-off); doorbells
    // rung meanwhile are picked up by the next pass.
    for (Client& client : clients_) {
      if (!client.pending) continue;
      client.pending = false;
      --pending_count_;
      ++counters_.flushes;
      client.fn(client.ctx);
    }
  }
}

}  // namespace mad2::mad
