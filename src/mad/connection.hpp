// The Connection object (paper Section 2.1): a reliable, in-order,
// point-to-point link between two session nodes within a channel. Hosts
// the Switch logic of Section 4: per-block TM selection, BMM routing, and
// the commit/checkout flushes that keep delivery ordered across TM changes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <utility>

#include "mad/bmm.hpp"
#include "mad/pmm.hpp"
#include "mad/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

namespace mad2 {
namespace hw {
class Node;
}
namespace sim {
class Simulator;
}
}  // namespace mad2

namespace mad2::mad {

class ChannelEndpoint;
class RailSet;

class Connection {
 public:
  Connection(ChannelEndpoint* endpoint, std::uint32_t remote,
             std::unique_ptr<Pmm::ConnState> state);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // --- Message construction (paper Table 1 / Section 4.1) ----------------
  /// Append a data block to the outgoing message.
  void pack(std::span<const std::byte> data, SendMode smode = send_CHEAPER,
            ReceiveMode rmode = receive_CHEAPER);
  /// Finalize the outgoing message: every packed block is flushed.
  void end_packing();

  // --- Message extraction (Section 4.2) -----------------------------------
  /// Extract the next data block (must mirror the sender's pack sequence).
  void unpack(std::span<std::byte> out, SendMode smode = send_CHEAPER,
              ReceiveMode rmode = receive_CHEAPER);
  /// Finalize the reception: all expected blocks are made available.
  void end_unpacking();

  /// Zero-copy unpack: borrow the next `len` stream bytes as views of the
  /// protocol's static receive buffers (appended to `out`, one entry per
  /// protocol-buffer chunk) instead of copying them into user memory.
  /// Only possible when the Switch would route this block to the
  /// static-copy BMM (the selected TM uses_static_buffers()) and the
  /// channel is not paranoid; returns false *without consuming anything*
  /// otherwise — the caller must then fall back to a copying unpack with
  /// the same (len, smode, rmode) so both sides stay symmetric.
  bool unpack_borrow(std::size_t len, SendMode smode, ReceiveMode rmode,
                     std::vector<BorrowedBlock>& out);

  [[nodiscard]] std::uint32_t remote() const { return remote_; }
  [[nodiscard]] std::uint32_t local() const;
  [[nodiscard]] bool packing() const { return packing_; }
  [[nodiscard]] bool unpacking() const { return unpacking_; }

  [[nodiscard]] ChannelEndpoint& endpoint() { return *endpoint_; }
  [[nodiscard]] hw::Node& node();
  [[nodiscard]] sim::Simulator& simulator();

  /// Traffic accounting for this connection (both directions).
  [[nodiscard]] const TrafficStats& stats() const { return stats_; }

  /// OK while the underlying links are healthy; the session's first
  /// recorded failure (e.g. a reliable link that gave up retransmitting)
  /// otherwise. Check after run() stops early to tell a clean finish from
  /// a degraded one.
  [[nodiscard]] const Status& link_status() const;

  /// Protocol state accessor for TMs (each PMM knows its concrete type).
  template <typename T>
  [[nodiscard]] T& state() {
    return *static_cast<T*>(state_.get());
  }

  /// Resolve the Switch decision for a hypothetical block without touching
  /// any message state — the dispatch-table equivalence sweep in
  /// tests/fastpath_test.cpp compares this against the legacy query.
  /// `from_table` says whether the flat dispatch table answered.
  struct SwitchDecision {
    Tm* tm = nullptr;
    BmmKind kind{};
    bool from_table = false;
  };
  [[nodiscard]] SwitchDecision probe_switch(std::size_t len, SendMode smode,
                                            ReceiveMode rmode);

 private:
  friend class ChannelEndpoint;
  friend class RailSet;
  void begin_packing_message();
  void begin_unpacking_message();

  void pack_impl(std::span<const std::byte> data, SendMode smode,
                 ReceiveMode rmode);
  void unpack_impl(std::span<std::byte> out, SendMode smode,
                   ReceiveMode rmode);

  /// Paranoid-mode check block: one precedes every user block.
  struct CheckBlock {
    std::uint32_t magic;
    std::uint32_t length;
    std::uint8_t smode;
    std::uint8_t rmode;
    std::uint16_t sequence;
  };
  static constexpr std::uint32_t kCheckMagic = 0x3a2d11eeu;

  SendBmm* send_bmm_for(Tm* tm, BmmKind kind);
  RecvBmm* recv_bmm_for(Tm* tm, BmmKind kind);

  // --- flat dispatch table (docs/PERFORMANCE.md) --------------------------
  // The Switch decision — TM, BMM kind, BMM instance, stats counters — is
  // a pure function of (size class, send mode, receive mode), so for PMMs
  // that declare their size-class boundaries (Pmm::selection_breakpoints)
  // it is resolved once here and the per-block hot path becomes a bounded
  // scan over at most a handful of boundaries plus one indexed load: no
  // virtual select_tm call, no std::map find, no per-block string key.
  // Entries resolve through send_bmm_for/recv_bmm_for, so the table and
  // the legacy path share BMM instances and the flush-on-change pointer
  // comparisons stay exact. Built lazily on first use (after setup).
  struct DispatchEntry {
    Tm* tm = nullptr;
    BmmKind kind{};
    SendBmm* send_bmm = nullptr;
    RecvBmm* recv_bmm = nullptr;
    TmCounters* sent = nullptr;
    TmCounters* received = nullptr;
  };
  void build_dispatch();
  [[nodiscard]] DispatchEntry* dispatch_entry(std::size_t len, SendMode smode,
                                              ReceiveMode rmode);
  static constexpr std::size_t kModePairs = 6;  // 3 send x 2 receive modes
  static std::size_t mode_pair(SendMode smode, ReceiveMode rmode) {
    return static_cast<std::size_t>(smode) * 2 +
           static_cast<std::size_t>(rmode);
  }

  // --- madtrace bindings (obs/) ------------------------------------------
  /// Rebind the cached histogram/flow state when the ambient recorder or
  /// metrics registry changed since the last message. Called from the
  /// begin_* hooks, so mid-message installs take effect on the next one.
  void obs_bind();
  [[nodiscard]] sim::Time obs_now() const {
    const obs::ExecContext& exec = obs::exec_context();
    return exec.now != nullptr ? *exec.now : 0;
  }
  [[nodiscard]] bool obs_switch_on() const {
    return obs_channel_ok_ &&
           obs::trace_enabled(obs::Category::kSwitch);
  }

  ChannelEndpoint* endpoint_;
  std::uint32_t remote_;
  std::unique_ptr<Pmm::ConnState> state_;
  TrafficStats stats_;

  // madtrace state: histogram pointers are cached find-or-create results
  // (valid for the registry's lifetime); e2e stamps correlate through the
  // ambient registry because sender and receiver are distinct Connection
  // objects. All of it reads the clock only — zero virtual-time cost.
  obs::MetricsRegistry* obs_registry_ = nullptr;
  const obs::TraceRecorder* obs_recorder_ = nullptr;
  obs::Histogram* obs_hist_pack_ = nullptr;
  obs::Histogram* obs_hist_unpack_ = nullptr;
  obs::Histogram* obs_hist_e2e_ = nullptr;
  std::string obs_flow_tx_;  // "<channel>/<local>-<remote>"
  std::string obs_flow_rx_;  // "<channel>/<remote>-<local>"
  bool obs_channel_ok_ = false;  // recorder channel filter verdict
  sim::Time obs_pack_start_ = 0;
  sim::Time obs_unpack_start_ = 0;

  // Rail-set binding (mad/rail_set.hpp): non-null iff this connection's
  // channel heads a rail set. Large CHEAPER/CHEAPER blocks are then handed
  // to the scheduler instead of a single TM; `striping_` guards the
  // framing and inline-segment blocks the scheduler itself packs through
  // this connection from being striped again.
  RailSet* rails_ = nullptr;
  bool striping_ = false;
  std::uint32_t stripe_seq_tx_ = 0;
  std::uint32_t stripe_seq_rx_ = 0;

  // Send-side switch state.
  bool packing_ = false;
  std::uint16_t pack_sequence_ = 0;
  std::uint16_t unpack_sequence_ = 0;
  Tm* send_tm_ = nullptr;
  SendBmm* send_bmm_ = nullptr;
  std::map<std::pair<Tm*, BmmKind>, std::unique_ptr<SendBmm>> send_bmms_;

  // Receive-side switch state.
  bool unpacking_ = false;
  Tm* recv_tm_ = nullptr;
  RecvBmm* recv_bmm_ = nullptr;
  std::map<std::pair<Tm*, BmmKind>, std::unique_ptr<RecvBmm>> recv_bmms_;

  // Flat dispatch table state (see build_dispatch).
  bool dispatch_built_ = false;
  bool dispatch_enabled_ = false;
  std::vector<std::size_t> dispatch_breaks_;  // sorted class upper bounds
  std::vector<DispatchEntry> dispatch_;  // [mode_pair * classes + class]
};

}  // namespace mad2::mad
