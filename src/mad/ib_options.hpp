// Tunables of the IB protocol module, exposed separately so channel
// definitions can carry per-channel overrides (the network-level knobs —
// qp_depth, regcache_capacity — live in net::IbParams, since they size
// adapter resources shared by every channel on the port).
#pragma once

#include <cstddef>

namespace mad2::mad {

struct IbPmmOptions {
  /// Messages up to this many bytes go eager (copied through pre-posted
  /// registered buffers); larger blocks rendezvous via RDMA. Also sizes
  /// the eager buffers, so raising it trades pinned memory for a later
  /// protocol switch — the abl_ib crossover sweep measures the trade.
  std::size_t eager_cutoff = 8192;
  /// Receiver returns eager credits in batches of this size. Clamped by
  /// the IbPmm to [1, qp_depth/2] so a shallow QP degrades batching
  /// instead of starving the sender.
  std::size_t credit_batch = 4;
};

}  // namespace mad2::mad
