// Tunables of the BIP protocol module, exposed separately so channel
// definitions can carry per-channel overrides (e.g. credit-window
// experiments).
#pragma once

#include <cstddef>

namespace mad2::mad {

struct BipPmmOptions {
  /// Shorts in flight allowed per connection before the sender must wait
  /// for credit returns. Must stay within what the driver's host buffer
  /// pool can back.
  std::size_t credits = 8;
  /// Receiver returns credits in batches of this size (<= credits / 2).
  std::size_t credit_batch = 4;
};

}  // namespace mad2::mad
