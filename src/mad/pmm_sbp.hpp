// SBP protocol management module: a single transmission module, and it is
// a *static-buffer* one — every byte moves through the kernel's fixed
// buffer pools via the static-copy BMM (Section 6.1's SBP case). Credits
// bound the receiver pool, as with BIP's short path.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "mad/pmm.hpp"
#include "mad/session.hpp"
#include "net/sbp.hpp"

namespace mad2::mad {

class SbpPmm;

class SbpTm final : public Tm {
 public:
  explicit SbpTm(SbpPmm* pmm) : pmm_(pmm) {}
  [[nodiscard]] std::string_view name() const override { return "sbp"; }
  [[nodiscard]] bool uses_static_buffers() const override { return true; }

  void send_buffer(Connection&, std::span<const std::byte>) override;
  void receive_buffer(Connection&, std::span<std::byte>) override;
  StaticBuffer obtain_static_buffer(Connection& connection) override;
  void send_static_buffer(Connection& connection,
                          StaticBuffer& buffer) override;
  StaticBuffer receive_static_buffer(Connection& connection) override;
  void release_static_buffer(Connection& connection,
                             StaticBuffer& buffer) override;
  [[nodiscard]] bool try_retain_static_buffer(Connection& connection) override;
  void release_retained_static_buffer(Connection& connection,
                                      StaticBuffer& buffer) override;

 private:
  SbpPmm* pmm_;
};

class SbpPmm final : public Pmm {
 public:
  static constexpr std::size_t kInitialCredits = 8;
  static constexpr std::size_t kCreditBatch = 4;
  static constexpr std::uint32_t kMaxPorts = 64;

  explicit SbpPmm(ChannelEndpoint& endpoint);

  [[nodiscard]] std::string_view name() const override { return "sbp"; }

  struct State : ConnState {
    explicit State(sim::Simulator* simulator)
        : credits_wq(simulator), recv_wq(simulator) {}
    std::uint32_t remote = 0;
    std::uint32_t remote_port = 0;
    std::size_t credits = kInitialCredits;
    sim::WaitQueue credits_wq;
    std::deque<net::SbpRxBuffer> incoming;
    sim::WaitQueue recv_wq;
    std::size_t credit_owed = 0;
    // Slots lent out past consumption (zero-copy borrows), capped at half
    // the credit window so the sender cannot be starved by held views.
    std::size_t retained = 0;
  };

  std::unique_ptr<ConnState> make_conn_state(std::uint32_t remote) override;
  void finish_setup() override;
  Tm& select_tm(std::size_t len, SendMode smode, ReceiveMode rmode) override;
  /// Single (static-buffer) TM: selection is size-independent.
  [[nodiscard]] std::optional<std::vector<std::size_t>> selection_breakpoints()
      const override {
    return std::vector<std::size_t>{};
  }
  std::uint32_t wait_incoming() override;
  [[nodiscard]] double bandwidth_hint_mbs() const override;

  [[nodiscard]] net::SbpPort& port() { return *port_; }
  [[nodiscard]] ChannelEndpoint& endpoint() { return endpoint_; }
  [[nodiscard]] std::uint32_t data_tag(std::uint32_t sender_port) const;
  [[nodiscard]] std::uint32_t ctrl_tag(std::uint32_t sender_port) const;
  void send_credits(State& state, std::uint64_t count);

  /// Stash for checked-out rx buffers behind StaticBuffer handles.
  StaticBuffer wrap(net::SbpRxBuffer buffer);
  net::SbpRxBuffer unwrap(const StaticBuffer& buffer);
  /// Stash for borrowed tx buffers behind StaticBuffer handles.
  StaticBuffer wrap_tx(net::SbpTxBuffer buffer);
  net::SbpTxBuffer unwrap_tx(const StaticBuffer& buffer);

 private:
  void pump_loop();

  ChannelEndpoint& endpoint_;
  net::SbpPort* port_;
  SbpTm tm_;
  std::map<std::uint32_t, State*> states_;
  std::map<std::uint32_t, std::uint32_t> by_port_;
  std::vector<std::uint32_t> peer_order_;
  std::size_t rr_next_ = 0;
  std::unique_ptr<sim::WaitQueue> incoming_wq_;
  std::map<std::uint64_t, net::SbpRxBuffer> checked_out_rx_;
  std::map<std::uint64_t, net::SbpTxBuffer> checked_out_tx_;
  std::uint64_t next_handle_ = 1;
};

}  // namespace mad2::mad
