// InfiniBand protocol management module (ROADMAP item 3).
//
// Three transmission modules over one queue pair per connection, the
// protocol family of "Design and Implementation of MPICH2 over InfiniBand
// with RDMA Support" (PAPERS.md):
//  - the *eager* TM copies short messages through pre-registered,
//    pre-posted buffers under a credit window sized by the QP depth (a
//    send with no posted receive breaks the QP, so the window is load-
//    bearing); the message kind rides in the 64-bit immediate;
//  - the *rendezvous-write* TM: RTS announces the block, the receiver
//    pins the landing area through the registration cache and answers CTS
//    with its rkeys, the sender RDMA-writes straight from (cache-pinned)
//    user memory with an immediate on the last block — the write-with-
//    immediate completion replaces a FIN round;
//  - the *rendezvous-read* TM (receiver-driven, for CHEAPER landings):
//    the source pins its blocks and advertises rkeys; the receiver pulls
//    them with RDMA reads whenever it gets around to landing the data,
//    then fires DONE.
// Completion-queue reaping is either a per-endpoint pump fiber (legacy)
// or — under the session's `fastpath` stanza — a ProgressEngine client
// that drains the CQ once per scheduled batch, with the CQ's doorbell
// callback ringing the engine.
//
// Rail integration: segment_send_checked / segment_recv_checked run the
// write rendezvous with Status propagation and a give-up deadline instead
// of aborting, so an IB rail inside a RailSet survives mid-rendezvous
// link death (the RailSet resubmits the segment elsewhere).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "mad/ib_options.hpp"
#include "mad/pmm.hpp"
#include "mad/session.hpp"
#include "net/ib.hpp"

namespace mad2::mad {

class IbPmm;

class IbEagerTm final : public Tm {
 public:
  explicit IbEagerTm(IbPmm* pmm) : pmm_(pmm) {}
  [[nodiscard]] std::string_view name() const override { return "ib-eager"; }
  [[nodiscard]] bool uses_static_buffers() const override { return true; }

  void send_buffer(Connection&, std::span<const std::byte>) override;
  void receive_buffer(Connection&, std::span<std::byte>) override;
  StaticBuffer obtain_static_buffer(Connection& connection) override;
  void send_static_buffer(Connection& connection,
                          StaticBuffer& buffer) override;
  StaticBuffer receive_static_buffer(Connection& connection) override;
  void release_static_buffer(Connection& connection,
                             StaticBuffer& buffer) override;
  [[nodiscard]] bool try_retain_static_buffer(Connection& connection) override;
  void release_retained_static_buffer(Connection& connection,
                                      StaticBuffer& buffer) override;

 private:
  IbPmm* pmm_;
};

class IbRdmaWriteTm final : public Tm {
 public:
  explicit IbRdmaWriteTm(IbPmm* pmm) : pmm_(pmm) {}
  [[nodiscard]] std::string_view name() const override { return "ib-write"; }

  void send_buffer(Connection& connection,
                   std::span<const std::byte> data) override;
  void send_buffer_group(
      Connection& connection,
      const std::vector<std::span<const std::byte>>& group) override;
  void receive_buffer(Connection& connection,
                      std::span<std::byte> out) override;
  void receive_sub_buffer_group(
      Connection& connection,
      const std::vector<std::span<std::byte>>& group) override;

 private:
  IbPmm* pmm_;
};

class IbRdmaReadTm final : public Tm {
 public:
  explicit IbRdmaReadTm(IbPmm* pmm) : pmm_(pmm) {}
  [[nodiscard]] std::string_view name() const override { return "ib-read"; }

  void send_buffer(Connection& connection,
                   std::span<const std::byte> data) override;
  void send_buffer_group(
      Connection& connection,
      const std::vector<std::span<const std::byte>>& group) override;
  void receive_buffer(Connection& connection,
                      std::span<std::byte> out) override;
  void receive_sub_buffer_group(
      Connection& connection,
      const std::vector<std::span<std::byte>>& group) override;

 private:
  IbPmm* pmm_;
};

class IbPmm final : public Pmm {
 public:
  IbPmm(ChannelEndpoint& endpoint, IbPmmOptions options);

  [[nodiscard]] std::string_view name() const override { return "ib"; }

  /// Message kind, carried in the low byte of the 64-bit immediate; the
  /// remaining 56 bits are the kind-specific value.
  enum class MsgKind : std::uint64_t {
    kData = 1,     ///< eager payload (length = completion bytes)
    kCredit = 2,   ///< value = returned credit count
    kRts = 3,      ///< value = total bytes (write rendezvous announce)
    kCts = 4,      ///< value = seq; payload = u32 count + (rkey,off) pairs
    kRtsRead = 5,  ///< value = total; payload = u32 count + (rkey,off,len)
    kDone = 6,     ///< read rendezvous finished
    kFin = 7,      ///< write-with-immediate marker; value = seq
  };

  /// A peer block advertised in a CTS (write rendezvous).
  struct RemoteBlock {
    std::uint64_t rkey = 0;
    std::uint64_t offset = 0;  // within the registered region
  };
  /// A source block advertised in an RTS_READ (read rendezvous).
  struct ReadBlock {
    std::uint64_t rkey = 0;
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
  };
  struct Cts {
    std::uint64_t seq = 0;
    std::vector<RemoteBlock> blocks;
  };

  struct State : ConnState {
    explicit State(sim::Simulator* simulator)
        : credits_wq(simulator), rdv_wq(simulator), recv_wq(simulator) {}
    std::uint32_t remote = 0;
    std::uint32_t remote_port = 0;
    // --- send side ---
    std::size_t credits = 0;  // window = IbParams::qp_depth
    sim::WaitQueue credits_wq;
    std::deque<Cts> cts_queue;       // answers to our RTS
    std::size_t write_acks = 0;      // kRdmaWrite completions reaped
    std::size_t read_done_acks = 0;  // kDone messages received
    sim::WaitQueue rdv_wq;
    // --- receive side (filled by the CQ dispatch) ---
    std::deque<std::pair<std::size_t, std::size_t>> data_pkts;
    std::deque<std::uint64_t> rts;           // announced write totals
    std::deque<std::vector<ReadBlock>> rts_read;
    std::deque<std::uint64_t> write_imms;    // landed write seqs
    std::size_t read_dones = 0;              // kRdmaRead completions
    sim::WaitQueue recv_wq;
    std::size_t credit_owed = 0;
    std::size_t retained = 0;
    std::uint64_t next_seq = 1;
    // Pre-registered, pre-posted eager receive pool.
    std::vector<std::vector<std::byte>> pool;
    // Set once the link died (error CQE or give-up deadline); every
    // checked wait bails with dead_status.
    bool dead = false;
    Status dead_status;
  };

  std::unique_ptr<ConnState> make_conn_state(std::uint32_t remote) override;
  void finish_setup() override;
  Tm& select_tm(std::size_t len, SendMode smode, ReceiveMode rmode) override;
  /// Eager vs rendezvous, split at the eager cutoff.
  [[nodiscard]] std::optional<std::vector<std::size_t>> selection_breakpoints()
      const override {
    return std::vector<std::size_t>{options_.eager_cutoff};
  }
  std::uint32_t wait_incoming() override;
  [[nodiscard]] double bandwidth_hint_mbs() const override;

  // --- helpers used by the TMs ---
  [[nodiscard]] net::IbPort& port() { return *port_; }
  [[nodiscard]] ChannelEndpoint& endpoint() { return endpoint_; }
  [[nodiscard]] const IbPmmOptions& options() const { return options_; }
  [[nodiscard]] std::uint32_t qp() const;
  [[nodiscard]] std::size_t window() const;
  /// Eager receive-pool size: the worst-case number of messages a peer
  /// can have in flight toward us before our dispatcher runs (every
  /// arrival consumes a posted receive, and a send with none posted
  /// breaks the QP). See the definition for the derivation.
  [[nodiscard]] std::size_t recv_pool_size() const;

  static std::uint64_t encode_imm(MsgKind kind, std::uint64_t value) {
    return static_cast<std::uint64_t>(kind) | (value << 8);
  }

  void send_ctrl(State& state, MsgKind kind, std::uint64_t value,
                 std::span<const std::byte> payload = {});

  /// Drain every reaped completion into the per-connection state. Safe to
  /// call from anywhere; re-entry (engine tick vs inline drain) no-ops.
  void drain_cq();

  // --- RailSet integration (see rail_set.cpp) -----------------------------
  /// One checked write-rendezvous segment: like the write TM, but link
  /// death (error completions, or a give-up deadline on a handshake that
  /// went quiet) returns a Status instead of wedging. All-or-nothing: an
  /// error means nothing of `data` is claimed delivered.
  Status segment_send_checked(Connection& connection,
                              std::span<const std::byte> data);
  Status segment_recv_checked(Connection& connection,
                              std::span<std::byte> out);

 private:
  void pump_loop();
  void dispatch(const net::IbCompletion& completion);
  State& state_of_port(std::uint32_t port);
  std::size_t pool_index(State& state, const std::byte* data);
  void repost(State& state, std::size_t index);
  void mark_dead(State& state, const Status& status);
  /// True once the connection is unusable (local flag or poisoned port).
  bool check_dead(State& state);
  /// Deadline-guarded wait on `wq`: returns false and kills the
  /// connection if `deadline` passes first.
  bool wait_or_give_up(State& state, sim::WaitQueue& wq, sim::Time deadline);

  ChannelEndpoint& endpoint_;
  IbPmmOptions options_;
  net::IbPort* port_;
  IbEagerTm eager_tm_;
  IbRdmaWriteTm write_tm_;
  IbRdmaReadTm read_tm_;
  std::map<std::uint32_t, State*> states_;          // remote -> state
  std::map<std::uint32_t, std::uint32_t> by_port_;  // remote port -> remote
  std::vector<std::uint32_t> peer_order_;
  std::size_t rr_next_ = 0;
  std::unique_ptr<sim::WaitQueue> incoming_wq_;
  // Staging pool for outgoing eager buffers (registered once).
  std::vector<std::vector<std::byte>> staging_;
  std::vector<std::size_t> staging_free_;
  // Fastpath state (inert without the session stanza).
  ProgressEngine* engine_ = nullptr;
  std::size_t doorbell_ = 0;
  bool engine_mode_ = false;
  bool drain_active_ = false;

  friend class IbEagerTm;
  friend class IbRdmaWriteTm;
  friend class IbRdmaReadTm;
};

}  // namespace mad2::mad
