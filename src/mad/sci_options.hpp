// Tunables of the SISCI protocol management module, exposed separately so
// channel definitions can carry per-channel overrides (e.g. benchmarks
// that enable the DMA TM the paper ships disabled).
#pragma once

#include <cstdint>

namespace mad2::mad {

struct SciPmmOptions {
  std::uint32_t short_slots = 8;
  std::uint32_t short_capacity = 256;  // short TM cutoff
  /// Ring depth for the bulk TM. The paper's implementation dual-buffers
  /// (2); the simulated wire is store-and-forward at packet granularity,
  /// which adds latency real PIO does not have, so a depth of 4 is needed
  /// to keep the sender streaming. The overlap behaviour (the Figure 4
  /// kink at bulk_capacity) is unchanged.
  std::uint32_t bulk_buffers = 4;
  std::uint32_t bulk_capacity = 8192;  // the Figure 4 kink
  bool enable_dma = false;             // paper: implemented but not active
  std::uint32_t dma_min_bytes = 32768;
  /// Receiver returns short-slot credits every this many consumptions.
  std::uint32_t short_feedback_batch = 4;
};

}  // namespace mad2::mad
