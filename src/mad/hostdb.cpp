#include "mad/hostdb.hpp"

#include <algorithm>

#include "util/status.hpp"

namespace mad2::mad {

void Hostdb::reset(std::size_t node_count) {
  hosts_.assign(node_count, HostEntry{});
  epoch_ = 0;
  dead_ = 0;
}

const Hostdb::HostEntry& Hostdb::host(std::uint32_t node) const {
  MAD2_CHECK(node < hosts_.size(), "unknown node id in the host directory");
  return hosts_[node];
}

void Hostdb::add_adapter(std::uint32_t node, const std::string& network) {
  MAD2_CHECK(node < hosts_.size(), "unknown node id in the host directory");
  std::vector<std::string>& adapters = hosts_[node].adapters;
  if (std::find(adapters.begin(), adapters.end(), network) ==
      adapters.end()) {
    adapters.push_back(network);
  }
}

void Hostdb::set_gateway_role(std::uint32_t node) {
  MAD2_CHECK(node < hosts_.size(), "unknown node id in the host directory");
  hosts_[node].gateway = true;
}

bool Hostdb::mark_dead(std::uint32_t node) {
  MAD2_CHECK(node < hosts_.size(), "unknown node id in the host directory");
  HostEntry& host = hosts_[node];
  if (!host.alive) return false;
  host.alive = false;
  host.death_epoch = ++epoch_;
  ++dead_;
  return true;
}

}  // namespace mad2::mad
