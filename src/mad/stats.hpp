// Per-connection / per-channel traffic statistics: which Transmission
// Module carried how many blocks and bytes, per direction. The Switch
// updates these on every pack/unpack, so they answer the tuning question
// the paper's flag system poses: "is my data actually taking the transfer
// method I think it is?"
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "hw/node.hpp"
#include "net/fault.hpp"

namespace mad2::mad {

struct TmCounters {
  std::uint64_t blocks = 0;
  std::uint64_t bytes = 0;
};

/// Striping activity of one rail (see mad/rail_set.hpp), as observed by
/// the connection whose blocks were striped. Both directions update it:
/// the sender when it posts segments, the receiver when it lands them.
struct RailCounters {
  /// Payload bytes this rail carried as striped segments.
  std::uint64_t bytes = 0;
  /// Striped segments posted on this rail.
  std::uint64_t segments = 0;
  /// Segments reassigned to surviving rails after this rail failed.
  std::uint64_t resubmits = 0;
  /// Scheduler weight (measured MB/s, EWMA) at the last striped block.
  double weight = 0.0;
};

/// End-to-end activity of one congestion-controlled flow (src -> dst
/// through a virtual channel; see mad/congestion.hpp). packets/bytes
/// count delivered traffic; the rest are snapshots of the control state:
/// queue_depth_hwm is the flow's high-water mark across every gateway
/// fair queue it crossed (boundedness evidence for tests — no trace-dump
/// parsing needed), cwnd/srtt_us the window and smoothed delay at
/// collection time.
struct FlowCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t queue_depth_hwm = 0;
  double cwnd = 0.0;
  double srtt_us = 0.0;
  /// Failover activity (resilient routing only; zero otherwise).
  std::uint64_t replays = 0;
  std::uint64_t dup_drops = 0;
};

/// Hot-path Switch accounting (see docs/PERFORMANCE.md): how blocks were
/// routed — through the flat per-connection dispatch table or the legacy
/// per-call virtual query — plus the virtual CPU time the Switch's own
/// bookkeeping charged. sim-ticks-per-message on the bench sidecars is
/// (pack_cpu_ticks / messages_sent) on the sending side.
struct SwitchCounters {
  std::uint64_t fast_selects = 0;    ///< blocks routed via the dispatch table
  std::uint64_t legacy_selects = 0;  ///< blocks routed via select_tm()
  std::uint64_t pack_cpu_ticks = 0;  ///< begin/pack/end charges, send side
  std::uint64_t unpack_cpu_ticks = 0;  ///< mirror, receive side

  void merge(const SwitchCounters& other) {
    fast_selects += other.fast_selects;
    legacy_selects += other.legacy_selects;
    pack_cpu_ticks += other.pack_cpu_ticks;
    unpack_cpu_ticks += other.unpack_cpu_ticks;
  }
};

struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  SwitchCounters switching;
  /// Keyed by TM name (e.g. "bip-short", "sci-pio").
  std::map<std::string, TmCounters> sent_by_tm;
  std::map<std::string, TmCounters> received_by_tm;
  /// Striping activity per rail, keyed by the rail channel's name. Empty
  /// unless the connection's channel heads a rail set.
  std::map<std::string, RailCounters> rails;
  /// Congestion-controlled flows, keyed "src->dst". Empty unless the
  /// stats come from a virtual channel with the congestion stanza on
  /// (fwd::VirtualChannel::stats()).
  std::map<std::string, FlowCounters> flows;
  /// Ack/retransmit work done by the reliable shim under this endpoint's
  /// networks. Link-level: a TCP port's shim serves every channel crossing
  /// it, so channels on the same port report the same numbers. All zero on
  /// lossless fabrics.
  net::ReliabilityCounters reliability;
  /// Host-memory traffic of the endpoint's *node* (charged memcpy bytes,
  /// buffer-pool allocations/recycles). Node-level: every endpoint on the
  /// same node reports the same numbers, and merging endpoints that share
  /// a node double-counts — merge across nodes, not across channels.
  hw::MemCounters mem;

  /// Identity-tagged views of `reliability` and `mem`: which link
  /// ("network:port") / which node each sample came from. merge() dedupes
  /// by key — endpoints sharing a node or a reliable port contribute one
  /// sample, not one per endpoint — and recomputes the flat fields from
  /// the deduped maps. ChannelEndpoint::stats() tags both; hand-built
  /// stats with empty maps fall back to the legacy blind add.
  std::map<std::string, net::ReliabilityCounters> reliability_by_link;
  std::map<std::uint32_t, hw::MemCounters> mem_by_node;

  void merge(const TrafficStats& other);

  /// Human-readable multi-line summary.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace mad2::mad
