// Batched progress engine (ROADMAP item 4, LCI-style).
//
// One ProgressEngine runs per node when the session's `fastpath` stanza is
// present: a daemon fiber that drains every pending doorbell in a single
// pass per schedule instead of one wakeup per message. Protocol modules
// register a flush callback once at setup and ring their doorbell from the
// hot path — a bit set plus one wait-queue notify, no allocation, no
// std::function construction per message. The tick then coalesces the
// deferred work: a TCP endpoint pushes every pending deferred send with
// one kernel crossing per stream, a BIP endpoint returns all owed credits
// with one control packet per peer.
//
// Without the stanza no engine exists and every driver keeps its legacy
// per-message behavior — virtual time and the wire stay bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/sync.hpp"

namespace mad2::mad {

/// `fastpath` config stanza: opt-in hot-path batching (see
/// docs/PERFORMANCE.md). Presence of the stanza enables the per-node
/// progress engines; the fields tune the batching thresholds.
struct FastPathConfig {
  /// A TCP stream whose deferred-send staging reaches this many bytes
  /// flushes inline (bounding staging memory and worst-case latency)
  /// instead of waiting for the next progress tick.
  std::size_t tcp_flush_bytes = 8 * 1024;
  /// BIP: owed receive credits are returned by the progress tick, one
  /// control packet per peer per tick, instead of inline on the app fiber
  /// at the batching threshold. The flush-before-block safety net in the
  /// short TM stays either way.
  bool defer_bip_credits = true;
  /// SISCI: consumed-counter feedback (short-slot and bulk-buffer
  /// credits) is PIO-written by the progress tick, one write per dirty
  /// counter per peer per tick, instead of per consumed unit on the app
  /// fiber. A fiber about to block still flushes its owed counters first
  /// so a peer waiting on them is never stalled behind the tick. VIA and
  /// SBP keep their legacy per-message behavior.
  bool defer_sci_feedback = true;
};

/// What the engine did, exported via Session::export_metrics
/// ("progress.nodeN.*") and surfaced in the bench JSON sidecars.
struct ProgressCounters {
  std::uint64_t ticks = 0;      ///< daemon passes that found work
  std::uint64_t doorbells = 0;  ///< ring() calls from hot paths
  std::uint64_t flushes = 0;    ///< client callbacks run
};

class ProgressEngine {
 public:
  ProgressEngine(sim::Simulator* simulator, std::string name);

  /// Plain function pointer on purpose: registration happens once at
  /// setup, the hot path never builds a std::function.
  using FlushFn = void (*)(void* ctx);

  /// Register a flush client; returns its doorbell id. Must be called
  /// before the simulation runs the first tick that rings it.
  std::size_t register_client(void* ctx, FlushFn fn);

  /// Ring `client`'s doorbell: mark it pending and wake the tick fiber.
  /// Idempotent while already pending.
  void ring(std::size_t client);

  /// Spawn the tick daemon (idempotent; the session calls it once).
  void start();

  [[nodiscard]] const ProgressCounters& counters() const {
    return counters_;
  }

 private:
  void loop();

  struct Client {
    void* ctx;
    FlushFn fn;
    bool pending;
  };

  sim::Simulator* simulator_;
  std::string name_;
  std::vector<Client> clients_;
  sim::WaitQueue wq_;
  std::size_t pending_count_ = 0;
  bool started_ = false;
  ProgressCounters counters_;
};

}  // namespace mad2::mad
