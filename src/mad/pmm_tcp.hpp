// TCP protocol management module: one stream per connection (stream id =
// channel id), a single TM, and symmetric small-block coalescing so that
// grouped sends pay one kernel crossing instead of one per block.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "mad/pmm.hpp"
#include "mad/session.hpp"
#include "net/tcp.hpp"

namespace mad2::mad {

class TcpPmm;

/// The single TCP transmission module (dynamic buffers, stream-backed).
class TcpTm final : public Tm {
 public:
  explicit TcpTm(TcpPmm* pmm) : pmm_(pmm) {}

  [[nodiscard]] std::string_view name() const override { return "tcp"; }
  [[nodiscard]] bool supports_groups() const override { return true; }

  void send_buffer(Connection& connection,
                   std::span<const std::byte> data) override;
  void send_buffer_group(
      Connection& connection,
      const std::vector<std::span<const std::byte>>& group) override;
  void receive_buffer(Connection& connection,
                      std::span<std::byte> out) override;
  void receive_sub_buffer_group(
      Connection& connection,
      const std::vector<std::span<std::byte>>& group) override;

  /// Blocks smaller than this are coalesced into one stream write when
  /// they appear consecutively in a group (fewer syscalls).
  static constexpr std::size_t kCoalesceMax = 1024;
  /// A coalesced run never exceeds this many bytes.
  static constexpr std::size_t kRunMax = 8192;

  /// Segment boundaries for a group, as (first, count, coalesced) runs —
  /// a pure function of the block sizes, replayed on both sides.
  struct Run {
    std::size_t first;
    std::size_t count;
    bool coalesced;
  };
  static std::vector<Run> plan_runs(const std::vector<std::size_t>& sizes);

 private:
  TcpPmm* pmm_;
};

class TcpPmm final : public Pmm {
 public:
  explicit TcpPmm(ChannelEndpoint& endpoint);

  [[nodiscard]] std::string_view name() const override { return "tcp"; }

  struct State : ConnState {
    net::TcpStream* stream = nullptr;
    std::uint32_t remote = 0;
  };

  std::unique_ptr<ConnState> make_conn_state(std::uint32_t remote) override;
  Tm& select_tm(std::size_t len, SendMode smode, ReceiveMode rmode) override;
  /// Single TM: selection is size-independent.
  [[nodiscard]] std::optional<std::vector<std::size_t>> selection_breakpoints()
      const override {
    return std::vector<std::size_t>{};
  }
  /// Wires the fastpath when the session has the stanza: streams switch to
  /// staged receives and this PMM registers a flush client with the node's
  /// progress engine for deferred small sends.
  void finish_setup() override;
  std::uint32_t wait_incoming() override;
  [[nodiscard]] double bandwidth_hint_mbs() const override;

  [[nodiscard]] ChannelEndpoint& endpoint() { return endpoint_; }
  [[nodiscard]] net::TcpPort& port() { return *port_; }

  // --- fastpath hooks for TcpTm ------------------------------------------
  [[nodiscard]] bool fastpath() const { return fast_; }
  /// Inline-flush threshold for a stream's deferred-send staging.
  [[nodiscard]] std::size_t flush_bytes() const { return fast_flush_bytes_; }
  void ring_doorbell() { engine_->ring(doorbell_); }

 private:
  void flush_pending_streams();

  ChannelEndpoint& endpoint_;
  net::TcpPort* port_;
  TcpTm tm_;
  std::vector<std::uint32_t> peers_;  // global ids, for fair round-robin
  std::vector<net::TcpStream*> peer_streams_;
  std::size_t rr_next_ = 0;
  // wait_incoming's select predicate, built once (no per-message
  // std::function churn); the result passes through incoming_found_.
  std::function<bool()> incoming_pred_;
  std::uint32_t incoming_found_ = 0;
  // Fastpath state (inert without the session stanza).
  ProgressEngine* engine_ = nullptr;
  std::size_t doorbell_ = 0;
  bool fast_ = false;
  std::size_t fast_flush_bytes_ = 8 * 1024;
};

}  // namespace mad2::mad
