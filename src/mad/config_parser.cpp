#include "mad/config_parser.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace mad2::mad {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

bool parse_u32(const std::string& token, std::uint32_t* out) {
  const char* begin = token.data();
  const char* end = begin + token.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool parse_f64(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

Status error_at(int line, const std::string& message) {
  return invalid_argument("config line " + std::to_string(line) + ": " +
                          message);
}

}  // namespace

Result<SessionConfig> parse_session_config(std::string_view text) {
  SessionConfig config;
  bool have_nodes = false;

  std::istringstream input{std::string(text)};
  std::string line;
  int line_number = 0;
  while (std::getline(input, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "nodes") {
      if (have_nodes) return error_at(line_number, "duplicate 'nodes'");
      if (tokens.size() != 2) {
        return error_at(line_number, "usage: nodes N");
      }
      std::uint32_t n = 0;
      if (!parse_u32(tokens[1], &n) || n == 0) {
        return error_at(line_number, "invalid node count '" + tokens[1] +
                                         "'");
      }
      config.node_count = n;
      have_nodes = true;
      continue;
    }

    if (directive == "network") {
      if (!have_nodes) {
        return error_at(line_number, "'nodes' must come before 'network'");
      }
      if (tokens.size() < 4) {
        return error_at(line_number,
                        "usage: network NAME KIND NODE [NODE...]");
      }
      NetworkDef net;
      net.name = tokens[1];
      for (const NetworkDef& existing : config.networks) {
        if (existing.name == net.name) {
          return error_at(line_number,
                          "duplicate network name '" + net.name + "'");
        }
      }
      const std::string& kind = tokens[2];
      if (kind == "bip") {
        net.kind = NetworkKind::kBip;
      } else if (kind == "sisci") {
        net.kind = NetworkKind::kSisci;
      } else if (kind == "tcp") {
        net.kind = NetworkKind::kTcp;
      } else if (kind == "via") {
        net.kind = NetworkKind::kVia;
      } else if (kind == "sbp") {
        net.kind = NetworkKind::kSbp;
      } else if (kind == "ib") {
        net.kind = NetworkKind::kIb;
      } else {
        return error_at(line_number, "unknown network kind '" + kind + "'");
      }
      bool saw_knob = false;
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        // Trailing key=value tokens tune the adapter (IB only: they size
        // HCA resources shared by every channel on the port).
        if (tokens[i].find('=') != std::string::npos) {
          saw_knob = true;
          if (net.kind != NetworkKind::kIb) {
            return error_at(line_number,
                            "network option '" + tokens[i] +
                                "' is only valid for kind 'ib'");
          }
          if (!net.ib_params.has_value()) {
            net.ib_params = net::IbParams::mellanox_like();
          }
          const std::string& token = tokens[i];
          if (token.rfind("qp_depth=", 0) == 0) {
            std::uint32_t depth = 0;
            if (!parse_u32(token.substr(9), &depth) || depth == 0) {
              return error_at(line_number,
                              "invalid qp_depth '" + token +
                                  "' (send queue depth and eager credit "
                                  "window; must be positive)");
            }
            net.ib_params->qp_depth = depth;
          } else if (token.rfind("regcache_capacity=", 0) == 0) {
            std::uint32_t capacity = 0;
            if (!parse_u32(token.substr(18), &capacity)) {
              return error_at(line_number,
                              "invalid regcache_capacity '" + token +
                                  "' (0 disables the registration cache)");
            }
            net.ib_params->regcache_capacity = capacity;
          } else {
            return error_at(line_number,
                            "unknown ib option '" + token +
                                "' (expected qp_depth=, "
                                "regcache_capacity=)");
          }
          continue;
        }
        if (saw_knob) {
          return error_at(line_number, "node ids must precede ib options");
        }
        std::uint32_t node = 0;
        if (!parse_u32(tokens[i], &node)) {
          return error_at(line_number, "invalid node id '" + tokens[i] +
                                           "'");
        }
        if (node >= config.node_count) {
          return error_at(line_number,
                          "node " + tokens[i] + " is out of range");
        }
        for (std::uint32_t existing : net.nodes) {
          if (existing == node) {
            return error_at(line_number, "node " + tokens[i] +
                                             " listed twice");
          }
        }
        net.nodes.push_back(node);
      }
      if (net.nodes.empty()) {
        return error_at(line_number, "network lists no nodes");
      }
      config.networks.push_back(std::move(net));
      continue;
    }

    if (directive == "channel") {
      if (tokens.size() < 3) {
        return error_at(
            line_number,
            "usage: channel NAME NETWORK [paranoid] [eager_cutoff=N]");
      }
      ChannelDef channel;
      channel.name = tokens[1];
      channel.network = tokens[2];
      for (const ChannelDef& existing : config.channels) {
        if (existing.name == channel.name) {
          return error_at(line_number,
                          "duplicate channel name '" + channel.name + "'");
        }
      }
      const NetworkDef* channel_net = nullptr;
      for (const NetworkDef& net : config.networks) {
        if (net.name == channel.network) channel_net = &net;
      }
      if (channel_net == nullptr) {
        return error_at(line_number,
                        "unknown network '" + channel.network + "'");
      }
      for (std::size_t i = 3; i < tokens.size(); ++i) {
        const std::string& token = tokens[i];
        if (token == "paranoid") {
          channel.paranoid = true;
        } else if (token.rfind("eager_cutoff=", 0) == 0) {
          if (channel_net->kind != NetworkKind::kIb) {
            return error_at(line_number,
                            "eager_cutoff= is only valid on ib channels");
          }
          std::uint32_t cutoff = 0;
          if (!parse_u32(token.substr(13), &cutoff) || cutoff < 64) {
            return error_at(line_number,
                            "invalid eager_cutoff '" + token +
                                "' (must be at least 64 bytes)");
          }
          if (!channel.ib_options.has_value()) {
            channel.ib_options = IbPmmOptions{};
          }
          channel.ib_options->eager_cutoff = cutoff;
        } else {
          return error_at(line_number,
                          "unknown channel option '" + token + "'");
        }
      }
      config.channels.push_back(std::move(channel));
      continue;
    }

    if (directive == "rails") {
      if (tokens.size() < 4) {
        return error_at(
            line_number,
            "usage: rails NAME CHANNEL CHANNEL [CHANNEL...] [threshold=N]");
      }
      RailSetDef rails;
      rails.name = tokens[1];
      for (const RailSetDef& existing : config.rail_sets) {
        if (existing.name == rails.name) {
          return error_at(line_number,
                          "duplicate rail set name '" + rails.name + "'");
        }
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const std::string& token = tokens[i];
        if (token.rfind("threshold=", 0) == 0) {
          if (i + 1 != tokens.size()) {
            return error_at(line_number, "threshold= must come last");
          }
          std::uint32_t threshold = 0;
          if (!parse_u32(token.substr(10), &threshold) || threshold == 0) {
            return error_at(line_number,
                            "invalid stripe threshold '" + token + "'");
          }
          rails.stripe_threshold = threshold;
          break;
        }
        const ChannelDef* member = nullptr;
        for (const ChannelDef& channel : config.channels) {
          if (channel.name == token) member = &channel;
        }
        if (member == nullptr) {
          return error_at(line_number, "unknown channel '" + token + "'");
        }
        if (member->paranoid) {
          return error_at(line_number,
                          "channel '" + token +
                              "' is paranoid: its check blocks would "
                              "interleave with striped segments");
        }
        for (const std::string& listed : rails.channels) {
          if (listed == token) {
            return error_at(line_number,
                            "channel '" + token + "' listed twice");
          }
        }
        for (const RailSetDef& other : config.rail_sets) {
          for (const std::string& taken : other.channels) {
            if (taken == token) {
              return error_at(line_number,
                              "channel '" + token +
                                  "' already belongs to rail set '" +
                                  other.name + "'");
            }
          }
        }
        // Rails must add adapters, and every adapter must reach the same
        // nodes — contradictory member sets are config errors, not
        // something the scheduler can paper over.
        auto network_of = [&config](const std::string& channel_name) {
          const NetworkDef* found = nullptr;
          for (const ChannelDef& channel : config.channels) {
            if (channel.name != channel_name) continue;
            for (const NetworkDef& net : config.networks) {
              if (net.name == channel.network) found = &net;
            }
          }
          return found;
        };
        const NetworkDef* net = network_of(token);
        for (const std::string& listed : rails.channels) {
          const NetworkDef* other = network_of(listed);
          if (other == net) {
            return error_at(line_number,
                            "channels '" + listed + "' and '" + token +
                                "' share network '" + net->name +
                                "': striping over one adapter adds no "
                                "bandwidth");
          }
          std::vector<std::uint32_t> a = net->nodes;
          std::vector<std::uint32_t> b = other->nodes;
          std::sort(a.begin(), a.end());
          std::sort(b.begin(), b.end());
          if (a != b) {
            return error_at(line_number,
                            "channels '" + listed + "' and '" + token +
                                "' span different node sets");
          }
        }
        rails.channels.push_back(token);
      }
      if (rails.channels.size() < 2) {
        return error_at(line_number,
                        "a rail set needs at least two member channels");
      }
      if (rails.channels.size() > 32) {
        return error_at(line_number, "at most 32 rails per set");
      }
      config.rail_sets.push_back(std::move(rails));
      continue;
    }

    if (directive == "congestion") {
      if (config.congestion.has_value()) {
        return error_at(line_number, "duplicate 'congestion'");
      }
      CongestionConfig cc;
      cc.enabled = true;
      // Contradictory knob combinations are config errors, not something
      // the window arithmetic can paper over — mirror the rails checks.
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string& token = tokens[i];
        if (token.rfind("window=", 0) == 0) {
          std::uint32_t window = 0;
          if (!parse_u32(token.substr(7), &window) || window == 0) {
            return error_at(line_number,
                            "invalid congestion window '" + token + "'");
          }
          cc.init_window = window;
        } else if (token.rfind("min_window=", 0) == 0) {
          std::uint32_t window = 0;
          if (!parse_u32(token.substr(11), &window) || window == 0) {
            return error_at(
                line_number,
                "invalid congestion min_window '" + token +
                    "' (a zero minimum would starve the flow forever)");
          }
          cc.min_window = window;
        } else if (token.rfind("max_window=", 0) == 0) {
          std::uint32_t window = 0;
          if (!parse_u32(token.substr(11), &window) || window == 0) {
            return error_at(line_number,
                            "invalid congestion max_window '" + token + "'");
          }
          cc.max_window = window;
        } else if (token.rfind("gain=", 0) == 0) {
          double gain = 0.0;
          if (!parse_f64(token.substr(5), &gain) || gain <= 0.0) {
            return error_at(line_number,
                            "invalid congestion gain '" + token +
                                "' (must be positive)");
          }
          cc.gain = gain;
        } else if (token.rfind("decrease=", 0) == 0) {
          double decrease = 0.0;
          if (!parse_f64(token.substr(9), &decrease) || decrease <= 0.0 ||
              decrease >= 1.0) {
            return error_at(line_number,
                            "invalid congestion decrease '" + token +
                                "' (must be in (0, 1))");
          }
          cc.decrease = decrease;
        } else if (token.rfind("backlog=", 0) == 0) {
          double backlog = 0.0;
          if (!parse_f64(token.substr(8), &backlog) || backlog <= 1.0) {
            return error_at(line_number,
                            "invalid congestion backlog '" + token +
                                "' (must be > 1: smoothed delay at the "
                                "observed floor is not congestion)");
          }
          cc.backlog_factor = backlog;
        } else if (token.rfind("quantum=", 0) == 0) {
          std::uint32_t quantum = 0;
          if (!parse_u32(token.substr(8), &quantum) || quantum == 0) {
            return error_at(line_number,
                            "invalid congestion quantum '" + token + "'");
          }
          cc.quantum = quantum;
        } else if (token.rfind("gateway_queue=", 0) == 0) {
          std::uint32_t depth = 0;
          if (!parse_u32(token.substr(14), &depth) || depth == 0) {
            return error_at(line_number,
                            "invalid congestion gateway_queue '" + token +
                                "'");
          }
          cc.gateway_queue = depth;
        } else {
          return error_at(line_number,
                          "unknown congestion option '" + token +
                              "' (expected window=, min_window=, "
                              "max_window=, gain=, decrease=, backlog=, "
                              "quantum=, gateway_queue=)");
        }
      }
      if (cc.max_window < cc.min_window) {
        return error_at(line_number,
                        "congestion max_window is below min_window");
      }
      if (cc.init_window != 0 && (cc.init_window < cc.min_window ||
                                  cc.init_window > cc.max_window)) {
        return error_at(line_number,
                        "congestion window is outside "
                        "[min_window, max_window]");
      }
      config.congestion = cc;
      continue;
    }

    if (directive == "topology") {
      if (config.topology.has_value()) {
        return error_at(line_number, "duplicate 'topology'");
      }
      TopologyConfig tc;
      tc.enabled = true;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string& token = tokens[i];
        if (token.rfind("salt=", 0) == 0) {
          std::uint32_t salt = 0;
          if (!parse_u32(token.substr(5), &salt)) {
            return error_at(line_number,
                            "invalid topology salt '" + token + "'");
          }
          tc.spread_salt = salt;
        } else if (token.rfind("replay_quota=", 0) == 0) {
          std::uint32_t quota = 0;
          if (!parse_u32(token.substr(13), &quota) || quota == 0) {
            return error_at(line_number,
                            "invalid topology replay_quota '" + token +
                                "' (a zero quota could never admit a "
                                "packet)");
          }
          tc.replay_quota = quota;
        } else {
          return error_at(line_number,
                          "unknown topology option '" + token +
                              "' (expected salt=, replay_quota=)");
        }
      }
      config.topology = tc;
      continue;
    }

    if (directive == "trace") {
      if (config.trace.has_value()) {
        return error_at(line_number, "duplicate 'trace'");
      }
      obs::TraceConfig trace;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const std::string& token = tokens[i];
        if (token.rfind("categories=", 0) == 0) {
          std::uint32_t mask = 0;
          if (!obs::parse_categories(token.substr(11), &mask)) {
            return error_at(line_number,
                            "invalid trace categories '" + token + "'");
          }
          trace.categories = mask;
        } else if (token.rfind("ring_kb=", 0) == 0) {
          std::uint32_t ring_kb = 0;
          if (!parse_u32(token.substr(8), &ring_kb) || ring_kb == 0) {
            return error_at(line_number,
                            "invalid trace ring size '" + token + "'");
          }
          trace.ring_kb = ring_kb;
        } else if (token.rfind("channels=", 0) == 0) {
          // Comma-separated channel filter for the Switch category.
          std::string rest = token.substr(9);
          std::size_t start = 0;
          while (start <= rest.size()) {
            const std::size_t comma = rest.find(',', start);
            const std::string name =
                rest.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start);
            if (name.empty()) {
              return error_at(line_number,
                              "invalid trace channel list '" + token + "'");
            }
            bool known = false;
            for (const ChannelDef& channel : config.channels) {
              if (channel.name == name) known = true;
            }
            if (!known) {
              return error_at(line_number,
                              "unknown channel '" + name + "' in trace");
            }
            trace.channels.push_back(name);
            if (comma == std::string::npos) break;
            start = comma + 1;
          }
        } else if (token == "propagation") {
          trace.propagation = true;
        } else if (token.rfind("slo=", 0) == 0) {
          // Comma-separated watchdog rules: slo=<channel>:<p99_us>,...
          std::string rest = token.substr(4);
          std::size_t start = 0;
          while (start <= rest.size()) {
            const std::size_t comma = rest.find(',', start);
            const std::string rule =
                rest.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start);
            const std::size_t colon = rule.find(':');
            if (colon == std::string::npos || colon == 0) {
              return error_at(line_number,
                              "invalid trace slo rule '" + rule +
                                  "' (expected <channel>:<p99_us>)");
            }
            obs::SloRule slo;
            slo.channel = rule.substr(0, colon);
            std::uint32_t threshold = 0;
            if (!parse_u32(rule.substr(colon + 1), &threshold) ||
                threshold == 0) {
              return error_at(line_number,
                              "invalid trace slo threshold in '" + rule +
                                  "' (want a positive microsecond count)");
            }
            slo.p99_us = threshold;
            bool known = false;
            for (const ChannelDef& channel : config.channels) {
              if (channel.name == slo.channel) known = true;
            }
            if (!known) {
              return error_at(line_number, "unknown channel '" +
                                               slo.channel + "' in trace slo");
            }
            trace.slo.push_back(std::move(slo));
            if (comma == std::string::npos) break;
            start = comma + 1;
          }
        } else {
          return error_at(line_number,
                          "unknown trace option '" + token +
                              "' (expected categories=, ring_kb=, "
                              "channels=, propagation, slo=)");
        }
      }
      config.trace = std::move(trace);
      continue;
    }

    return error_at(line_number, "unknown directive '" + directive + "'");
  }

  if (!have_nodes) return invalid_argument("config: missing 'nodes'");
  return config;
}

}  // namespace mad2::mad
