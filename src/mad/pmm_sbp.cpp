#include "mad/pmm_sbp.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {

SbpPmm::SbpPmm(ChannelEndpoint& endpoint)
    : endpoint_(endpoint), tm_(this) {
  NetworkInstance& network = endpoint_.channel().network();
  MAD2_CHECK(network.sbp != nullptr, "SbpPmm on a non-SBP network");
  port_ = &network.sbp->port(network.port(endpoint_.local()));
  incoming_wq_ =
      std::make_unique<sim::WaitQueue>(&endpoint_.session().simulator());
  static_assert(kCreditBatch * 2 <= kInitialCredits,
                "credit batching must not exhaust the window");
}

std::uint32_t SbpPmm::data_tag(std::uint32_t sender_port) const {
  MAD2_CHECK(sender_port < kMaxPorts, "port beyond SBP tag space");
  return endpoint_.channel().id() * 2 * kMaxPorts + sender_port;
}

std::uint32_t SbpPmm::ctrl_tag(std::uint32_t sender_port) const {
  MAD2_CHECK(sender_port < kMaxPorts, "port beyond SBP tag space");
  return endpoint_.channel().id() * 2 * kMaxPorts + kMaxPorts + sender_port;
}

std::unique_ptr<Pmm::ConnState> SbpPmm::make_conn_state(
    std::uint32_t remote) {
  auto state = std::make_unique<State>(&endpoint_.session().simulator());
  state->remote = remote;
  state->remote_port = endpoint_.channel().network().port(remote);
  states_[remote] = state.get();
  by_port_[state->remote_port] = remote;
  peer_order_.push_back(remote);
  return state;
}

void SbpPmm::finish_setup() {
  endpoint_.session().simulator().spawn_daemon(
      "mad.sbp.pump." + endpoint_.channel().name() + "." +
          std::to_string(endpoint_.local()),
      [this] { pump_loop(); });
}

Tm& SbpPmm::select_tm(std::size_t, SendMode, ReceiveMode) { return tm_; }

void SbpPmm::pump_loop() {
  std::vector<std::uint32_t> tags;
  for (const auto& [port, remote] : by_port_) {
    tags.push_back(data_tag(port));
    tags.push_back(ctrl_tag(port));
  }
  if (tags.empty()) return;

  const std::uint32_t channel_id = endpoint_.channel().id();
  const std::uint32_t ctrl_base = channel_id * 2 * kMaxPorts + kMaxPorts;
  const std::uint32_t data_base = channel_id * 2 * kMaxPorts;

  for (;;) {
    const std::uint32_t tag = port_->wait_multi(tags);
    net::SbpRxBuffer buffer = port_->recv(tag);
    const bool is_ctrl = tag >= ctrl_base;
    const std::uint32_t sender_port =
        is_ctrl ? tag - ctrl_base : tag - data_base;
    auto remote_it = by_port_.find(sender_port);
    MAD2_CHECK(remote_it != by_port_.end(), "packet from unknown port");
    State& state = *states_.at(remote_it->second);

    if (is_ctrl) {
      MAD2_CHECK(buffer.data.size() == 8, "malformed SBP credit packet");
      state.credits += load_u64(buffer.data.data());
      state.credits_wq.notify_all();
      port_->release(buffer);
    } else {
      state.incoming.push_back(buffer);
      state.recv_wq.notify_all();
    }
    incoming_wq_->notify_all();
  }
}

std::uint32_t SbpPmm::wait_incoming() {
  for (;;) {
    for (std::size_t k = 0; k < peer_order_.size(); ++k) {
      const std::size_t idx = (rr_next_ + k) % peer_order_.size();
      State& state = *states_.at(peer_order_[idx]);
      if (!state.incoming.empty()) {
        rr_next_ = (idx + 1) % peer_order_.size();
        return peer_order_[idx];
      }
    }
    incoming_wq_->wait();
  }
}

void SbpPmm::send_credits(State& state, std::uint64_t count) {
  net::SbpTxBuffer buffer = port_->acquire_tx_buffer();
  store_u64(buffer.memory.data(), count);
  const std::uint32_t my_port =
      endpoint_.channel().network().port(endpoint_.local());
  port_->send(state.remote_port, ctrl_tag(my_port), buffer, 8);
}

StaticBuffer SbpPmm::wrap(net::SbpRxBuffer buffer) {
  const std::uint64_t handle = next_handle_++;
  StaticBuffer wrapped;
  wrapped.memory = std::span<std::byte>(
      const_cast<std::byte*>(buffer.data.data()), buffer.data.size());
  wrapped.used = buffer.data.size();
  wrapped.handle = handle;
  checked_out_rx_.emplace(handle, buffer);
  return wrapped;
}

net::SbpRxBuffer SbpPmm::unwrap(const StaticBuffer& buffer) {
  auto it = checked_out_rx_.find(buffer.handle);
  MAD2_CHECK(it != checked_out_rx_.end(), "unknown rx buffer handle");
  net::SbpRxBuffer raw = it->second;
  checked_out_rx_.erase(it);
  return raw;
}

StaticBuffer SbpPmm::wrap_tx(net::SbpTxBuffer buffer) {
  const std::uint64_t handle = next_handle_++;
  StaticBuffer wrapped;
  wrapped.memory = buffer.memory;
  wrapped.used = 0;
  wrapped.handle = handle;
  checked_out_tx_.emplace(handle, buffer);
  return wrapped;
}

net::SbpTxBuffer SbpPmm::unwrap_tx(const StaticBuffer& buffer) {
  auto it = checked_out_tx_.find(buffer.handle);
  MAD2_CHECK(it != checked_out_tx_.end(), "unknown tx buffer handle");
  net::SbpTxBuffer raw = it->second;
  checked_out_tx_.erase(it);
  return raw;
}

// -------------------------------------------------------------------- TM ---

void SbpTm::send_buffer(Connection&, std::span<const std::byte>) {
  MAD2_CHECK(false, "SBP moves data through static buffers only");
}

void SbpTm::receive_buffer(Connection&, std::span<std::byte>) {
  MAD2_CHECK(false, "SBP moves data through static buffers only");
}

StaticBuffer SbpTm::obtain_static_buffer(Connection&) {
  return pmm_->wrap_tx(pmm_->port().acquire_tx_buffer());
}

void SbpTm::send_static_buffer(Connection& connection,
                               StaticBuffer& buffer) {
  auto& state = connection.state<SbpPmm::State>();
  if (state.credits == 0) {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "sbp.credit_wait");
    wait.args(buffer.used);
    while (state.credits == 0) state.credits_wq.wait();
  }
  --state.credits;
  net::SbpTxBuffer raw = pmm_->unwrap_tx(buffer);
  const std::uint32_t my_port = pmm_->endpoint().channel().network().port(
      pmm_->endpoint().local());
  pmm_->port().send(state.remote_port, pmm_->data_tag(my_port), raw,
                    buffer.used);
  buffer = StaticBuffer{};
}

StaticBuffer SbpTm::receive_static_buffer(Connection& connection) {
  auto& state = connection.state<SbpPmm::State>();
  if (state.incoming.empty() && state.credit_owed > 0) {
    // About to block: flush owed credits, the sender may be starved
    // below the batching threshold.
    pmm_->send_credits(state, state.credit_owed);
    state.credit_owed = 0;
  }
  while (state.incoming.empty()) state.recv_wq.wait();
  net::SbpRxBuffer buffer = state.incoming.front();
  state.incoming.pop_front();
  return pmm_->wrap(buffer);
}

void SbpTm::release_static_buffer(Connection& connection,
                                  StaticBuffer& buffer) {
  auto& state = connection.state<SbpPmm::State>();
  net::SbpRxBuffer raw = pmm_->unwrap(buffer);
  pmm_->port().release(raw);
  buffer = StaticBuffer{};
  if (++state.credit_owed >= SbpPmm::kCreditBatch) {
    pmm_->send_credits(state, state.credit_owed);
    state.credit_owed = 0;
  }
}

bool SbpTm::try_retain_static_buffer(Connection& connection) {
  auto& state = connection.state<SbpPmm::State>();
  if (state.retained >= SbpPmm::kInitialCredits / 2) return false;
  ++state.retained;
  return true;
}

void SbpTm::release_retained_static_buffer(Connection& connection,
                                           StaticBuffer& buffer) {
  auto& state = connection.state<SbpPmm::State>();
  MAD2_CHECK(state.retained > 0,
             "retained-slot release without a matching retain");
  --state.retained;
  release_static_buffer(connection, buffer);
}


double SbpPmm::bandwidth_hint_mbs() const {
  const net::SbpParams& p = endpoint_.channel().network().sbp->params();
  // Fixed kernel buffers: every buffer_bytes of payload pays header_bytes
  // of framing on the wire.
  const double framed =
      p.fabric.wire_mbs * p.buffer_bytes /
      static_cast<double>(p.buffer_bytes + p.header_bytes);
  return std::min(framed, endpoint_.node().params().pci_dma_mbs);
}

}  // namespace mad2::mad
