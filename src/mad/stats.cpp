#include "mad/stats.hpp"

#include <cstdio>

namespace mad2::mad {

void TrafficStats::merge(const TrafficStats& other) {
  messages_sent += other.messages_sent;
  messages_received += other.messages_received;
  for (const auto& [tm, counters] : other.sent_by_tm) {
    sent_by_tm[tm].blocks += counters.blocks;
    sent_by_tm[tm].bytes += counters.bytes;
  }
  for (const auto& [tm, counters] : other.received_by_tm) {
    received_by_tm[tm].blocks += counters.blocks;
    received_by_tm[tm].bytes += counters.bytes;
  }
  for (const auto& [rail, counters] : other.rails) {
    RailCounters& mine = rails[rail];
    mine.bytes += counters.bytes;
    mine.segments += counters.segments;
    mine.resubmits += counters.resubmits;
    // Weights are snapshots, not sums; keep the largest observed.
    if (counters.weight > mine.weight) mine.weight = counters.weight;
  }
  reliability.merge(other.reliability);
  mem.merge(other.mem);
}

std::string TrafficStats::to_string() const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof line, "messages: %llu sent, %llu received\n",
                static_cast<unsigned long long>(messages_sent),
                static_cast<unsigned long long>(messages_received));
  out += line;
  for (const auto& [tm, counters] : sent_by_tm) {
    std::snprintf(line, sizeof line,
                  "  tx %-12s %8llu blocks %12llu bytes\n", tm.c_str(),
                  static_cast<unsigned long long>(counters.blocks),
                  static_cast<unsigned long long>(counters.bytes));
    out += line;
  }
  for (const auto& [tm, counters] : received_by_tm) {
    std::snprintf(line, sizeof line,
                  "  rx %-12s %8llu blocks %12llu bytes\n", tm.c_str(),
                  static_cast<unsigned long long>(counters.blocks),
                  static_cast<unsigned long long>(counters.bytes));
    out += line;
  }
  for (const auto& [rail, counters] : rails) {
    std::snprintf(line, sizeof line,
                  "  rail %-10s %8llu segs %12llu bytes %6llu resubmits "
                  "w=%.1f MB/s\n",
                  rail.c_str(),
                  static_cast<unsigned long long>(counters.segments),
                  static_cast<unsigned long long>(counters.bytes),
                  static_cast<unsigned long long>(counters.resubmits),
                  counters.weight);
    out += line;
  }
  if (reliability.data_frames != 0 || reliability.give_ups != 0) {
    out += "  " + reliability.to_string() + "\n";
  }
  if (mem.memcpy_bytes != 0 || mem.alloc_count != 0 ||
      mem.pool_recycle_count != 0) {
    std::snprintf(line, sizeof line,
                  "  mem %12llu memcpy bytes %8llu allocs %8llu pool "
                  "recycles\n",
                  static_cast<unsigned long long>(mem.memcpy_bytes),
                  static_cast<unsigned long long>(mem.alloc_count),
                  static_cast<unsigned long long>(mem.pool_recycle_count));
    out += line;
  }
  return out;
}

}  // namespace mad2::mad
