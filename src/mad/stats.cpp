#include "mad/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace mad2::mad {

namespace {

// Two samples with the same identity are snapshots of one monotonic
// counter family, possibly taken at different times; field-wise max keeps
// the most recent one instead of summing the duplicate.
hw::MemCounters newest(const hw::MemCounters& a, const hw::MemCounters& b) {
  hw::MemCounters out;
  out.memcpy_bytes = std::max(a.memcpy_bytes, b.memcpy_bytes);
  out.alloc_count = std::max(a.alloc_count, b.alloc_count);
  out.pool_recycle_count =
      std::max(a.pool_recycle_count, b.pool_recycle_count);
  out.reg_count = std::max(a.reg_count, b.reg_count);
  out.dereg_count = std::max(a.dereg_count, b.dereg_count);
  // pinned_bytes is a gauge, so "max" would resurrect freed pins: take it
  // from whichever snapshot saw more registration activity (i.e. is more
  // recent on this monotonic family).
  out.pinned_bytes = a.reg_count + a.dereg_count >= b.reg_count + b.dereg_count
                         ? a.pinned_bytes
                         : b.pinned_bytes;
  return out;
}

net::ReliabilityCounters newest(const net::ReliabilityCounters& a,
                                const net::ReliabilityCounters& b) {
  net::ReliabilityCounters out;
  out.data_frames = std::max(a.data_frames, b.data_frames);
  out.retransmits = std::max(a.retransmits, b.retransmits);
  out.acks_sent = std::max(a.acks_sent, b.acks_sent);
  out.dup_frames = std::max(a.dup_frames, b.dup_frames);
  out.corrupt_frames = std::max(a.corrupt_frames, b.corrupt_frames);
  out.give_ups = std::max(a.give_ups, b.give_ups);
  out.max_rto = std::max(a.max_rto, b.max_rto);
  out.rtt_samples = std::max(a.rtt_samples, b.rtt_samples);
  out.srtt = std::max(a.srtt, b.srtt);
  if (a.min_rtt == 0) {
    out.min_rtt = b.min_rtt;
  } else if (b.min_rtt == 0) {
    out.min_rtt = a.min_rtt;
  } else {
    out.min_rtt = std::min(a.min_rtt, b.min_rtt);
  }
  return out;
}

}  // namespace

void TrafficStats::merge(const TrafficStats& other) {
  messages_sent += other.messages_sent;
  messages_received += other.messages_received;
  switching.merge(other.switching);
  for (const auto& [tm, counters] : other.sent_by_tm) {
    sent_by_tm[tm].blocks += counters.blocks;
    sent_by_tm[tm].bytes += counters.bytes;
  }
  for (const auto& [tm, counters] : other.received_by_tm) {
    received_by_tm[tm].blocks += counters.blocks;
    received_by_tm[tm].bytes += counters.bytes;
  }
  for (const auto& [rail, counters] : other.rails) {
    RailCounters& mine = rails[rail];
    mine.bytes += counters.bytes;
    mine.segments += counters.segments;
    mine.resubmits += counters.resubmits;
    // Weights are snapshots, not sums; keep the largest observed.
    if (counters.weight > mine.weight) mine.weight = counters.weight;
  }
  for (const auto& [flow, counters] : other.flows) {
    FlowCounters& mine = flows[flow];
    mine.packets += counters.packets;
    mine.bytes += counters.bytes;
    // Depth high-water marks and control state are snapshots, not sums.
    mine.queue_depth_hwm =
        std::max(mine.queue_depth_hwm, counters.queue_depth_hwm);
    if (counters.cwnd > mine.cwnd) mine.cwnd = counters.cwnd;
    if (counters.srtt_us > mine.srtt_us) mine.srtt_us = counters.srtt_us;
    mine.replays += counters.replays;
    mine.dup_drops += counters.dup_drops;
  }
  // Link- and node-level counters dedupe by identity: two endpoints on
  // the same node (or sharing a reliable TCP port) report the *same*
  // underlying counters, so blind addition double-counts them. When the
  // incoming stats carry identity tags, fold per key and rebuild the flat
  // field from the deduped map; untagged stats keep the legacy blind add.
  if (!other.reliability_by_link.empty()) {
    for (const auto& [link, counters] : other.reliability_by_link) {
      auto [it, inserted] = reliability_by_link.emplace(link, counters);
      if (!inserted) it->second = newest(it->second, counters);
    }
    reliability = {};
    for (const auto& [link, counters] : reliability_by_link) {
      reliability.merge(counters);
    }
  } else {
    reliability.merge(other.reliability);
  }
  if (!other.mem_by_node.empty()) {
    for (const auto& [node, counters] : other.mem_by_node) {
      auto [it, inserted] = mem_by_node.emplace(node, counters);
      if (!inserted) it->second = newest(it->second, counters);
    }
    mem = {};
    for (const auto& [node, counters] : mem_by_node) {
      mem.merge(counters);
    }
  } else {
    mem.merge(other.mem);
  }
}

std::string TrafficStats::to_string() const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof line, "messages: %llu sent, %llu received\n",
                static_cast<unsigned long long>(messages_sent),
                static_cast<unsigned long long>(messages_received));
  out += line;
  for (const auto& [tm, counters] : sent_by_tm) {
    std::snprintf(line, sizeof line,
                  "  tx %-12s %8llu blocks %12llu bytes\n", tm.c_str(),
                  static_cast<unsigned long long>(counters.blocks),
                  static_cast<unsigned long long>(counters.bytes));
    out += line;
  }
  for (const auto& [tm, counters] : received_by_tm) {
    std::snprintf(line, sizeof line,
                  "  rx %-12s %8llu blocks %12llu bytes\n", tm.c_str(),
                  static_cast<unsigned long long>(counters.blocks),
                  static_cast<unsigned long long>(counters.bytes));
    out += line;
  }
  for (const auto& [rail, counters] : rails) {
    std::snprintf(line, sizeof line,
                  "  rail %-10s %8llu segs %12llu bytes %6llu resubmits "
                  "w=%.1f MB/s\n",
                  rail.c_str(),
                  static_cast<unsigned long long>(counters.segments),
                  static_cast<unsigned long long>(counters.bytes),
                  static_cast<unsigned long long>(counters.resubmits),
                  counters.weight);
    out += line;
  }
  for (const auto& [flow, counters] : flows) {
    std::snprintf(line, sizeof line,
                  "  flow %-10s %8llu pkts %12llu bytes q.hwm=%llu "
                  "cwnd=%.1f srtt=%.1f us\n",
                  flow.c_str(),
                  static_cast<unsigned long long>(counters.packets),
                  static_cast<unsigned long long>(counters.bytes),
                  static_cast<unsigned long long>(counters.queue_depth_hwm),
                  counters.cwnd, counters.srtt_us);
    out += line;
    if (counters.replays != 0 || counters.dup_drops != 0) {
      std::snprintf(line, sizeof line,
                    "    failover %llu replays %llu dup drops\n",
                    static_cast<unsigned long long>(counters.replays),
                    static_cast<unsigned long long>(counters.dup_drops));
      out += line;
    }
  }
  if (switching.fast_selects != 0 || switching.legacy_selects != 0) {
    std::snprintf(line, sizeof line,
                  "  switch %8llu fast %8llu legacy selects "
                  "%12llu/%llu pack/unpack cpu ticks\n",
                  static_cast<unsigned long long>(switching.fast_selects),
                  static_cast<unsigned long long>(switching.legacy_selects),
                  static_cast<unsigned long long>(switching.pack_cpu_ticks),
                  static_cast<unsigned long long>(switching.unpack_cpu_ticks));
    out += line;
  }
  if (reliability.data_frames != 0 || reliability.give_ups != 0) {
    out += "  " + reliability.to_string() + "\n";
  }
  if (mem.memcpy_bytes != 0 || mem.alloc_count != 0 ||
      mem.pool_recycle_count != 0) {
    std::snprintf(line, sizeof line,
                  "  mem %12llu memcpy bytes %8llu allocs %8llu pool "
                  "recycles\n",
                  static_cast<unsigned long long>(mem.memcpy_bytes),
                  static_cast<unsigned long long>(mem.alloc_count),
                  static_cast<unsigned long long>(mem.pool_recycle_count));
    out += line;
  }
  if (mem.reg_count != 0 || mem.dereg_count != 0) {
    std::snprintf(line, sizeof line,
                  "  pin %12llu pinned bytes %8llu registrations %8llu "
                  "deregistrations\n",
                  static_cast<unsigned long long>(mem.pinned_bytes),
                  static_cast<unsigned long long>(mem.reg_count),
                  static_cast<unsigned long long>(mem.dereg_count));
    out += line;
  }
  return out;
}

}  // namespace mad2::mad
