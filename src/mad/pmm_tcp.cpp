#include "mad/pmm_tcp.hpp"

#include <cstring>

#include "obs/trace.hpp"

namespace mad2::mad {

// ------------------------------------------------------------------ TcpTm ---

void TcpTm::send_buffer(Connection& connection,
                        std::span<const std::byte> data) {
  if (data.empty()) return;
  MAD2_TRACE_SPAN(span, obs::Category::kTm, "tcp.send");
  span.args(data.size());
  net::TcpStream* stream = connection.state<TcpPmm::State>().stream;
  // Fastpath: small blocks stage without a kernel crossing; the progress
  // tick (or the staging threshold) flushes the coalesced batch with one
  // syscall. Large blocks keep the direct path — send() pushes any staged
  // bytes first, so ordering holds across the mix.
  if (pmm_->fastpath() && data.size() < kCoalesceMax) {
    stream->send_deferred(data);
    if (stream->pending_bytes() >= pmm_->flush_bytes()) {
      stream->flush_pending();
    } else {
      pmm_->ring_doorbell();
    }
    return;
  }
  stream->send(data);
}

void TcpTm::receive_buffer(Connection& connection,
                           std::span<std::byte> out) {
  if (out.empty()) return;
  MAD2_TRACE_SPAN(span, obs::Category::kTm, "tcp.recv");
  span.args(out.size());
  connection.state<TcpPmm::State>().stream->recv(out);
}

std::vector<TcpTm::Run> TcpTm::plan_runs(
    const std::vector<std::size_t>& sizes) {
  std::vector<Run> runs;
  std::size_t i = 0;
  while (i < sizes.size()) {
    if (sizes[i] >= kCoalesceMax) {
      runs.push_back(Run{i, 1, false});
      ++i;
      continue;
    }
    std::size_t j = i;
    std::size_t total = 0;
    while (j < sizes.size() && sizes[j] < kCoalesceMax &&
           total + sizes[j] <= kRunMax) {
      total += sizes[j];
      ++j;
    }
    runs.push_back(Run{i, j - i, j - i > 1});
    i = j;
  }
  return runs;
}

void TcpTm::send_buffer_group(
    Connection& connection,
    const std::vector<std::span<const std::byte>>& group) {
  std::vector<std::size_t> sizes;
  sizes.reserve(group.size());
  for (const auto& block : group) sizes.push_back(block.size());

  auto& state = connection.state<TcpPmm::State>();
  std::vector<std::byte> scratch;
  for (const Run& run : plan_runs(sizes)) {
    if (!run.coalesced) {
      for (std::size_t k = 0; k < run.count; ++k) {
        send_buffer(connection, group[run.first + k]);
      }
      continue;
    }
    scratch.clear();
    for (std::size_t k = 0; k < run.count; ++k) {
      const auto& block = group[run.first + k];
      connection.node().charge_memcpy(block.size());
      scratch.insert(scratch.end(), block.begin(), block.end());
    }
    if (!scratch.empty()) state.stream->send(scratch);
  }
}

void TcpTm::receive_sub_buffer_group(
    Connection& connection, const std::vector<std::span<std::byte>>& group) {
  std::vector<std::size_t> sizes;
  sizes.reserve(group.size());
  for (const auto& block : group) sizes.push_back(block.size());

  auto& state = connection.state<TcpPmm::State>();
  std::vector<std::byte> scratch;
  for (const Run& run : plan_runs(sizes)) {
    if (!run.coalesced) {
      for (std::size_t k = 0; k < run.count; ++k) {
        receive_buffer(connection, group[run.first + k]);
      }
      continue;
    }
    std::size_t total = 0;
    for (std::size_t k = 0; k < run.count; ++k) total += sizes[run.first + k];
    scratch.resize(total);
    if (total > 0) state.stream->recv(scratch);
    std::size_t offset = 0;
    for (std::size_t k = 0; k < run.count; ++k) {
      auto out = group[run.first + k];
      connection.node().charge_memcpy(out.size());
      std::memcpy(out.data(), scratch.data() + offset, out.size());
      offset += out.size();
    }
  }
}

// ----------------------------------------------------------------- TcpPmm ---

TcpPmm::TcpPmm(ChannelEndpoint& endpoint)
    : endpoint_(endpoint), tm_(this) {
  NetworkInstance& network = endpoint_.channel().network();
  MAD2_CHECK(network.tcp != nullptr, "TcpPmm on a non-TCP network");
  port_ = &network.tcp->port(network.port(endpoint_.local()));
}

std::unique_ptr<Pmm::ConnState> TcpPmm::make_conn_state(
    std::uint32_t remote) {
  auto state = std::make_unique<State>();
  state->remote = remote;
  NetworkInstance& network = endpoint_.channel().network();
  state->stream =
      &port_->stream(network.port(remote), endpoint_.channel().id());
  peers_.push_back(remote);
  peer_streams_.push_back(state->stream);
  return state;
}

Tm& TcpPmm::select_tm(std::size_t, SendMode, ReceiveMode) { return tm_; }

void TcpPmm::finish_setup() {
  Session& session = endpoint_.session();
  if (!session.config().fastpath.has_value()) return;
  fast_flush_bytes_ = session.config().fastpath->tcp_flush_bytes;
  engine_ = session.progress_engine(endpoint_.local());
  doorbell_ = engine_->register_client(this, [](void* ctx) {
    static_cast<TcpPmm*>(ctx)->flush_pending_streams();
  });
  for (net::TcpStream* stream : peer_streams_) stream->set_fastpath(true);
  fast_ = true;
}

void TcpPmm::flush_pending_streams() {
  for (net::TcpStream* stream : peer_streams_) stream->flush_pending();
}

std::uint32_t TcpPmm::wait_incoming() {
  if (!incoming_pred_) {
    incoming_pred_ = [this] {
      for (std::size_t k = 0; k < peers_.size(); ++k) {
        const std::size_t idx = (rr_next_ + k) % peers_.size();
        if (peer_streams_[idx]->readable()) {
          incoming_found_ = peers_[idx];
          rr_next_ = (idx + 1) % peers_.size();
          return true;
        }
      }
      return false;
    };
  }
  port_->wait_any(incoming_pred_);
  return incoming_found_;
}


double TcpPmm::bandwidth_hint_mbs() const {
  const net::TcpParams& p = endpoint_.channel().network().tcp->params();
  // Wire rate minus Ethernet/IP/TCP framing; kernel costs are per-block,
  // not per-byte, so they do not cap the large-block rate.
  return p.fabric.wire_mbs * static_cast<double>(p.mss) /
         static_cast<double>(p.mss + p.frame_overhead);
}

}  // namespace mad2::mad
