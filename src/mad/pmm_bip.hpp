// BIP protocol management module (paper Section 5.2.2).
//
// Two transmission modules, exactly as the paper describes:
//  - the *short message* TM uses BIP's preallocated receive buffers behind
//    a credit-based flow-control algorithm (so the finite buffer pool can
//    never overflow);
//  - the *long message* TM implements the receiver-acknowledgment
//    rendezvous BIP requires before a long message may be transmitted
//    (zero-copy delivery into the posted user buffer).
//
// A per-endpoint *pump* fiber is the single consumer of the driver's short
// queues for this channel: it routes data packets to per-connection slot
// queues and interprets control packets (rendezvous REQ/ACK, credit
// returns). Driver tags encode (channel, sender, data|ctrl) so channels
// and peers never share queues.
#pragma once

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "mad/bip_options.hpp"
#include "mad/pmm.hpp"
#include "mad/session.hpp"
#include "net/bip.hpp"

namespace mad2::mad {

class BipPmm;

class BipShortTm final : public Tm {
 public:
  explicit BipShortTm(BipPmm* pmm) : pmm_(pmm) {}
  [[nodiscard]] std::string_view name() const override { return "bip-short"; }
  [[nodiscard]] bool uses_static_buffers() const override { return true; }

  void send_buffer(Connection&, std::span<const std::byte>) override;
  void receive_buffer(Connection&, std::span<std::byte>) override;
  StaticBuffer obtain_static_buffer(Connection& connection) override;
  void send_static_buffer(Connection& connection,
                          StaticBuffer& buffer) override;
  StaticBuffer receive_static_buffer(Connection& connection) override;
  void release_static_buffer(Connection& connection,
                             StaticBuffer& buffer) override;
  [[nodiscard]] bool try_retain_static_buffer(Connection& connection) override;
  void release_retained_static_buffer(Connection& connection,
                                      StaticBuffer& buffer) override;

 private:
  BipPmm* pmm_;
};

class BipLongTm final : public Tm {
 public:
  explicit BipLongTm(BipPmm* pmm) : pmm_(pmm) {}
  [[nodiscard]] std::string_view name() const override { return "bip-long"; }

  void send_buffer(Connection& connection,
                   std::span<const std::byte> data) override;
  void send_buffer_group(
      Connection& connection,
      const std::vector<std::span<const std::byte>>& group) override;
  void receive_buffer(Connection& connection,
                      std::span<std::byte> out) override;
  void receive_sub_buffer_group(
      Connection& connection,
      const std::vector<std::span<std::byte>>& group) override;

 private:
  BipPmm* pmm_;
};

class BipPmm final : public Pmm {
 public:
  // Defaults, kept for callers that reference the classic window.
  static constexpr std::size_t kInitialCredits = 8;
  static constexpr std::size_t kCreditBatch = 4;
  /// Tag-space stride: tags encode (channel, data|ctrl, sender port).
  static constexpr std::uint32_t kMaxPorts = 64;

  BipPmm(ChannelEndpoint& endpoint, BipPmmOptions options);

  [[nodiscard]] std::string_view name() const override { return "bip"; }

  struct State : ConnState {
    explicit State(sim::Simulator* simulator)
        : credits_wq(simulator), ack_wq(simulator), recv_wq(simulator) {}
    std::uint32_t remote = 0;
    std::uint32_t remote_port = 0;
    // --- send side ---
    std::size_t credits = 0;  // window set from BipPmmOptions
    sim::WaitQueue credits_wq;
    std::size_t acks = 0;
    sim::WaitQueue ack_wq;
    // --- receive side (filled by the pump) ---
    std::deque<net::BipShortSlot> data_slots;
    std::deque<std::uint64_t> reqs;  // announced rendezvous sizes
    sim::WaitQueue recv_wq;
    std::size_t credit_owed = 0;
    // Received slots lent out past consumption (zero-copy borrows); each
    // one shrinks the sender's effective credit window until dropped, so
    // BipShortTm caps them at half the window.
    std::size_t retained = 0;
  };

  std::unique_ptr<ConnState> make_conn_state(std::uint32_t remote) override;
  void finish_setup() override;
  Tm& select_tm(std::size_t len, SendMode smode, ReceiveMode rmode) override;
  /// Two TMs split at the driver's short capacity.
  [[nodiscard]] std::optional<std::vector<std::size_t>> selection_breakpoints()
      const override {
    return std::vector<std::size_t>{short_capacity()};
  }
  std::uint32_t wait_incoming() override;
  [[nodiscard]] double bandwidth_hint_mbs() const override;

  // --- helpers used by the TMs ---
  [[nodiscard]] net::BipPort& port() { return *port_; }
  [[nodiscard]] ChannelEndpoint& endpoint() { return endpoint_; }
  [[nodiscard]] std::uint32_t short_capacity() const;
  [[nodiscard]] const BipPmmOptions& options() const { return options_; }
  [[nodiscard]] std::uint32_t data_tag(std::uint32_t sender_port) const;
  [[nodiscard]] std::uint32_t ctrl_tag(std::uint32_t sender_port) const;

  enum class CtrlKind : std::uint8_t { kCredit = 1, kReq = 2, kAck = 3 };
  void send_ctrl(State& state, CtrlKind kind, std::uint64_t value);

  /// Staging buffers for outgoing shorts.
  StaticBuffer obtain_staging();
  void release_staging(StaticBuffer& buffer);
  /// Stash a received driver slot behind a StaticBuffer handle.
  StaticBuffer wrap_slot(net::BipShortSlot slot);
  net::BipShortSlot unwrap_slot(const StaticBuffer& buffer);

  /// Deferred credit returns (fastpath): true when owed credits should
  /// accumulate for the progress tick instead of going out inline.
  [[nodiscard]] bool defer_credits() const { return defer_credits_; }
  void ring_doorbell() { engine_->ring(doorbell_); }

 private:
  void pump_loop();
  /// Progress-tick client: return every connection's owed credits, one
  /// control packet per indebted peer.
  void flush_owed_credits();

  ChannelEndpoint& endpoint_;
  BipPmmOptions options_;
  net::BipPort* port_;
  BipShortTm short_tm_;
  BipLongTm long_tm_;
  std::map<std::uint32_t, State*> states_;        // remote -> state
  std::map<std::uint32_t, std::uint32_t> by_port_;  // remote port -> remote
  std::unique_ptr<sim::WaitQueue> incoming_wq_;
  std::vector<std::uint32_t> peer_order_;  // round-robin for wait_incoming
  std::size_t rr_next_ = 0;
  // Staging pool for outgoing short buffers. Pre-sized at finish_setup so
  // the steady state never allocates; growth past the pre-size is counted
  // against the node (hw::MemCounters::alloc_count).
  std::vector<std::vector<std::byte>> staging_;
  std::vector<std::size_t> staging_free_;
  // Checked-out incoming slots: a fixed slab indexed by StaticBuffer::
  // handle - 1 plus a free list — no per-receive map-node allocation. An
  // empty data span marks a vacant slab entry (driver slots never are).
  std::vector<net::BipShortSlot> slot_slab_;
  std::vector<std::uint32_t> slot_free_;
  // Fastpath state (inert without the session stanza).
  ProgressEngine* engine_ = nullptr;
  std::size_t doorbell_ = 0;
  bool defer_credits_ = false;
};

}  // namespace mad2::mad
