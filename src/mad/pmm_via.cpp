#include "mad/pmm_via.hpp"

#include <algorithm>
#include <cstring>

#include "obs/trace.hpp"
#include "util/bytes.hpp"

namespace mad2::mad {

ViaPmm::ViaPmm(ChannelEndpoint& endpoint)
    : endpoint_(endpoint), short_tm_(this), bulk_tm_(this) {
  NetworkInstance& network = endpoint_.channel().network();
  MAD2_CHECK(network.via != nullptr, "ViaPmm on a non-VIA network");
  port_ = &network.via->port(network.port(endpoint_.local()));
  incoming_wq_ =
      std::make_unique<sim::WaitQueue>(&endpoint_.session().simulator());
  static_assert(kCreditBatch * 2 <= kInitialCredits,
                "credit batching must not exhaust the window");
}

std::uint32_t ViaPmm::short_vi() const {
  return endpoint_.channel().id() * 2 + kShortVi;
}

std::uint32_t ViaPmm::bulk_vi() const {
  return endpoint_.channel().id() * 2 + kBulkVi;
}

std::unique_ptr<Pmm::ConnState> ViaPmm::make_conn_state(
    std::uint32_t remote) {
  auto state = std::make_unique<State>(&endpoint_.session().simulator());
  state->remote = remote;
  state->remote_port = endpoint_.channel().network().port(remote);
  // Preregistered receive pool for VI 0: data credits plus headroom for
  // control packets (<= 1 REQ + 1 ACK + credit returns in flight).
  const std::size_t pool_size = kInitialCredits + 4;
  state->pool.resize(pool_size);
  for (auto& buffer : state->pool) {
    buffer.resize(kPacketBytes);
    (void)port_->register_memory(buffer);
    port_->post_recv(state->remote_port, buffer, short_vi());
  }
  states_[remote] = state.get();
  peer_order_.push_back(remote);
  return state;
}

void ViaPmm::finish_setup() {
  endpoint_.session().simulator().spawn_daemon(
      "mad.via.pump." + endpoint_.channel().name() + "." +
          std::to_string(endpoint_.local()),
      [this] { pump_loop(); });
}

Tm& ViaPmm::select_tm(std::size_t len, SendMode, ReceiveMode) {
  if (len <= kShortCapacity) return short_tm_;
  return bulk_tm_;
}

void ViaPmm::pump_loop() {
  if (states_.empty()) return;
  for (;;) {
    State* ready = nullptr;
    port_->wait_any([&] {
      for (auto& [remote, state] : states_) {
        if (port_->recv_ready(state->remote_port, short_vi())) {
          ready = state;
          return true;
        }
      }
      return false;
    });
    net::ViaRecvCompletion completion =
        port_->wait_recv(ready->remote_port, short_vi());
    MAD2_CHECK(completion.bytes >= kHeaderBytes, "malformed VIA packet");
    const auto kind =
        static_cast<PacketKind>(load_u32(completion.buffer.data()));
    const std::uint32_t value = load_u32(completion.buffer.data() + 4);

    // Identify which pool buffer completed.
    std::size_t index = ready->pool.size();
    for (std::size_t i = 0; i < ready->pool.size(); ++i) {
      if (ready->pool[i].data() == completion.buffer.data()) {
        index = i;
        break;
      }
    }
    MAD2_CHECK(index < ready->pool.size(), "completion on unknown buffer");

    switch (kind) {
      case PacketKind::kData:
        ready->data_pkts.emplace_back(index,
                                      completion.bytes - kHeaderBytes);
        ready->recv_wq.notify_all();
        break;
      case PacketKind::kReq:
        ready->reqs.push_back(value);
        ready->recv_wq.notify_all();
        port_->post_recv(ready->remote_port, ready->pool[index], short_vi());
        break;
      case PacketKind::kAck:
        ++ready->acks;
        ready->ack_wq.notify_all();
        port_->post_recv(ready->remote_port, ready->pool[index], short_vi());
        break;
      case PacketKind::kCredit:
        ready->credits += value;
        ready->credits_wq.notify_all();
        port_->post_recv(ready->remote_port, ready->pool[index], short_vi());
        break;
    }
    incoming_wq_->notify_all();
  }
}

std::uint32_t ViaPmm::wait_incoming() {
  for (;;) {
    for (std::size_t k = 0; k < peer_order_.size(); ++k) {
      const std::size_t idx = (rr_next_ + k) % peer_order_.size();
      State& state = *states_.at(peer_order_[idx]);
      if (!state.data_pkts.empty() || !state.reqs.empty()) {
        rr_next_ = (idx + 1) % peer_order_.size();
        return peer_order_[idx];
      }
    }
    incoming_wq_->wait();
  }
}

void ViaPmm::send_packet(State& state, PacketKind kind, std::uint64_t value,
                         std::span<const std::byte> payload) {
  MAD2_CHECK(payload.size() <= kShortCapacity, "VIA packet too large");
  std::vector<std::byte> packet(kHeaderBytes + payload.size());
  store_u32(packet.data(), static_cast<std::uint32_t>(kind));
  store_u32(packet.data() + 4, static_cast<std::uint32_t>(value));
  if (!payload.empty()) {
    std::memcpy(packet.data() + kHeaderBytes, payload.data(),
                payload.size());
  }
  port_->send(state.remote_port, packet, short_vi());
}

// -------------------------------------------------------------- ViaShortTm ---

void ViaShortTm::send_buffer(Connection&, std::span<const std::byte>) {
  MAD2_CHECK(false, "VIA short TM only moves static buffers");
}

void ViaShortTm::receive_buffer(Connection&, std::span<std::byte>) {
  MAD2_CHECK(false, "VIA short TM only moves static buffers");
}

StaticBuffer ViaShortTm::obtain_static_buffer(Connection&) {
  std::size_t index;
  if (!pmm_->staging_free_.empty()) {
    index = pmm_->staging_free_.back();
    pmm_->staging_free_.pop_back();
  } else {
    index = pmm_->staging_.size();
    pmm_->staging_.emplace_back(ViaPmm::kPacketBytes);
    (void)pmm_->port().register_memory(pmm_->staging_.back());
  }
  return StaticBuffer{
      std::span<std::byte>(pmm_->staging_[index])
          .subspan(ViaPmm::kHeaderBytes),
      0, index + 1};
}

void ViaShortTm::send_static_buffer(Connection& connection,
                                    StaticBuffer& buffer) {
  auto& state = connection.state<ViaPmm::State>();
  const std::size_t index = buffer.handle - 1;
  std::vector<std::byte>& packet = pmm_->staging_[index];
  store_u32(packet.data(),
            static_cast<std::uint32_t>(ViaPmm::PacketKind::kData));
  store_u32(packet.data() + 4, static_cast<std::uint32_t>(buffer.used));

  if (state.credits == 0) {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "via.credit_wait");
    wait.args(buffer.used);
    while (state.credits == 0) state.credits_wq.wait();
  }
  --state.credits;
  pmm_->port().send(
      state.remote_port,
      std::span<const std::byte>(packet).subspan(
          0, ViaPmm::kHeaderBytes + buffer.used),
      pmm_->short_vi());
  pmm_->staging_free_.push_back(index);
  buffer = StaticBuffer{};
}

StaticBuffer ViaShortTm::receive_static_buffer(Connection& connection) {
  auto& state = connection.state<ViaPmm::State>();
  if (state.data_pkts.empty() && state.credit_owed > 0) {
    // About to block: flush owed credits, the sender may be starved
    // below the batching threshold.
    pmm_->send_ctrl(state, ViaPmm::PacketKind::kCredit, state.credit_owed);
    state.credit_owed = 0;
  }
  while (state.data_pkts.empty()) state.recv_wq.wait();
  auto [index, bytes] = state.data_pkts.front();
  state.data_pkts.pop_front();
  return StaticBuffer{
      std::span<std::byte>(state.pool[index])
          .subspan(ViaPmm::kHeaderBytes, bytes),
      bytes, index + 1};
}

void ViaShortTm::release_static_buffer(Connection& connection,
                                       StaticBuffer& buffer) {
  auto& state = connection.state<ViaPmm::State>();
  const std::size_t index = buffer.handle - 1;
  pmm_->port().post_recv(state.remote_port, state.pool[index],
                         pmm_->short_vi());
  buffer = StaticBuffer{};
  if (++state.credit_owed >= ViaPmm::kCreditBatch) {
    pmm_->send_ctrl(state, ViaPmm::PacketKind::kCredit, state.credit_owed);
    state.credit_owed = 0;
  }
}

bool ViaShortTm::try_retain_static_buffer(Connection& connection) {
  auto& state = connection.state<ViaPmm::State>();
  if (state.retained >= ViaPmm::kInitialCredits / 2) return false;
  ++state.retained;
  return true;
}

void ViaShortTm::release_retained_static_buffer(Connection& connection,
                                                StaticBuffer& buffer) {
  auto& state = connection.state<ViaPmm::State>();
  MAD2_CHECK(state.retained > 0,
             "retained-slot release without a matching retain");
  --state.retained;
  release_static_buffer(connection, buffer);
}

// --------------------------------------------------------------- ViaBulkTm ---

void ViaBulkTm::send_buffer(Connection& connection,
                            std::span<const std::byte> data) {
  send_buffer_group(connection, {data});
}

void ViaBulkTm::send_buffer_group(
    Connection& connection,
    const std::vector<std::span<const std::byte>>& group) {
  auto& state = connection.state<ViaPmm::State>();
  std::uint64_t total = 0;
  for (const auto& block : group) total += block.size();

  pmm_->send_ctrl(state, ViaPmm::PacketKind::kReq, total);
  {
    MAD2_TRACE_SPAN(wait, obs::Category::kTm, "via.rdv_wait");
    wait.args(total, group.size());
    while (state.acks == 0) state.ack_wq.wait();
  }
  --state.acks;

  for (const auto& block : group) {
    // VIA requires the source to live in registered memory.
    (void)pmm_->port().register_memory(block);
    pmm_->port().send(state.remote_port, block, pmm_->bulk_vi());
  }
}

void ViaBulkTm::receive_buffer(Connection& connection,
                               std::span<std::byte> out) {
  std::vector<std::span<std::byte>> group{out};
  receive_sub_buffer_group(connection, group);
}

void ViaBulkTm::receive_sub_buffer_group(
    Connection& connection, const std::vector<std::span<std::byte>>& group) {
  auto& state = connection.state<ViaPmm::State>();
  while (state.reqs.empty()) state.recv_wq.wait();
  const std::uint64_t announced = state.reqs.front();
  state.reqs.pop_front();

  std::uint64_t total = 0;
  for (const auto& block : group) total += block.size();
  MAD2_CHECK(announced == total,
             "rendezvous size mismatch: asymmetric pack/unpack sequences");

  for (const auto& block : group) {
    (void)pmm_->port().register_memory(block);
    pmm_->port().post_recv(state.remote_port, block, pmm_->bulk_vi());
  }
  pmm_->send_ctrl(state, ViaPmm::PacketKind::kAck, 0);
  for (std::size_t i = 0; i < group.size(); ++i) {
    (void)pmm_->port().wait_recv(state.remote_port, pmm_->bulk_vi());
  }
}


double ViaPmm::bandwidth_hint_mbs() const {
  const net::ViaParams& p = endpoint_.channel().network().via->params();
  return std::min(p.fabric.wire_mbs, endpoint_.node().params().pci_dma_mbs);
}

}  // namespace mad2::mad
