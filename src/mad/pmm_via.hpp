// VIA protocol management module.
//
// Two transmission modules over two VIs per connection:
//  - VI 0, the *short* TM: user data is copied through preregistered
//    4 kB buffers (VIA requires registered memory), pre-posted at the
//    receiver and governed by credits, with an 8-byte in-band header
//    carrying the packet kind (data / rendezvous REQ / ACK / credit
//    return);
//  - VI 1, the *bulk* TM: rendezvous through VI 0, then a direct send from
//    (just-registered) user memory into the posted user buffer —
//    zero-copy, at the cost of per-transfer registration.
// A per-endpoint pump fiber demultiplexes VI 0.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "mad/pmm.hpp"
#include "mad/session.hpp"
#include "net/via.hpp"

namespace mad2::mad {

class ViaPmm;

class ViaShortTm final : public Tm {
 public:
  explicit ViaShortTm(ViaPmm* pmm) : pmm_(pmm) {}
  [[nodiscard]] std::string_view name() const override { return "via-short"; }
  [[nodiscard]] bool uses_static_buffers() const override { return true; }

  void send_buffer(Connection&, std::span<const std::byte>) override;
  void receive_buffer(Connection&, std::span<std::byte>) override;
  StaticBuffer obtain_static_buffer(Connection& connection) override;
  void send_static_buffer(Connection& connection,
                          StaticBuffer& buffer) override;
  StaticBuffer receive_static_buffer(Connection& connection) override;
  void release_static_buffer(Connection& connection,
                             StaticBuffer& buffer) override;
  [[nodiscard]] bool try_retain_static_buffer(Connection& connection) override;
  void release_retained_static_buffer(Connection& connection,
                                      StaticBuffer& buffer) override;

 private:
  ViaPmm* pmm_;
};

class ViaBulkTm final : public Tm {
 public:
  explicit ViaBulkTm(ViaPmm* pmm) : pmm_(pmm) {}
  [[nodiscard]] std::string_view name() const override { return "via-bulk"; }

  void send_buffer(Connection& connection,
                   std::span<const std::byte> data) override;
  void send_buffer_group(
      Connection& connection,
      const std::vector<std::span<const std::byte>>& group) override;
  void receive_buffer(Connection& connection,
                      std::span<std::byte> out) override;
  void receive_sub_buffer_group(
      Connection& connection,
      const std::vector<std::span<std::byte>>& group) override;

 private:
  ViaPmm* pmm_;
};

class ViaPmm final : public Pmm {
 public:
  static constexpr std::uint32_t kPacketBytes = 4096;
  static constexpr std::uint32_t kHeaderBytes = 8;  // u32 kind, u32 value
  static constexpr std::uint32_t kShortCapacity = kPacketBytes - kHeaderBytes;
  static constexpr std::size_t kInitialCredits = 8;
  static constexpr std::size_t kCreditBatch = 4;
  static constexpr std::uint32_t kShortVi = 0;  // per-channel VI pair base
  static constexpr std::uint32_t kBulkVi = 1;

  explicit ViaPmm(ChannelEndpoint& endpoint);

  [[nodiscard]] std::string_view name() const override { return "via"; }

  enum class PacketKind : std::uint32_t {
    kData = 1,
    kReq = 2,
    kAck = 3,
    kCredit = 4,
  };

  struct State : ConnState {
    explicit State(sim::Simulator* simulator)
        : credits_wq(simulator), ack_wq(simulator), recv_wq(simulator) {}
    std::uint32_t remote = 0;
    std::uint32_t remote_port = 0;
    // --- send side ---
    std::size_t credits = kInitialCredits;
    sim::WaitQueue credits_wq;
    std::size_t acks = 0;
    sim::WaitQueue ack_wq;
    // --- receive side (filled by the pump) ---
    // Completed data packets: (posted buffer backing index, payload bytes).
    std::deque<std::pair<std::size_t, std::size_t>> data_pkts;
    std::deque<std::uint64_t> reqs;
    sim::WaitQueue recv_wq;
    std::size_t credit_owed = 0;
    // Slots lent out past consumption (zero-copy borrows), capped at half
    // the credit window so the sender cannot be starved by held views.
    std::size_t retained = 0;
    // Preregistered, pre-posted receive buffers for VI 0.
    std::vector<std::vector<std::byte>> pool;
  };

  std::unique_ptr<ConnState> make_conn_state(std::uint32_t remote) override;
  void finish_setup() override;
  Tm& select_tm(std::size_t len, SendMode smode, ReceiveMode rmode) override;
  /// Short vs rendezvous, split at the packet payload capacity.
  [[nodiscard]] std::optional<std::vector<std::size_t>> selection_breakpoints()
      const override {
    return std::vector<std::size_t>{kShortCapacity};
  }
  std::uint32_t wait_incoming() override;
  [[nodiscard]] double bandwidth_hint_mbs() const override;

  [[nodiscard]] net::ViaPort& port() { return *port_; }
  [[nodiscard]] ChannelEndpoint& endpoint() { return endpoint_; }
  [[nodiscard]] std::uint32_t short_vi() const;
  [[nodiscard]] std::uint32_t bulk_vi() const;

  void send_packet(State& state, PacketKind kind, std::uint64_t value,
                   std::span<const std::byte> payload);
  void send_ctrl(State& state, PacketKind kind, std::uint64_t value) {
    send_packet(state, kind, value, {});
  }

 private:
  void pump_loop();

  ChannelEndpoint& endpoint_;
  net::ViaPort* port_;
  ViaShortTm short_tm_;
  ViaBulkTm bulk_tm_;
  std::map<std::uint32_t, State*> states_;
  std::vector<std::uint32_t> peer_order_;
  std::size_t rr_next_ = 0;
  std::unique_ptr<sim::WaitQueue> incoming_wq_;
  // Staging for outgoing VI-0 packets (header + payload assembled here).
  std::vector<std::vector<std::byte>> staging_;
  std::vector<std::size_t> staging_free_;

  friend class ViaShortTm;
  friend class ViaBulkTm;
};

}  // namespace mad2::mad
