// Topology/membership directory (ROADMAP item 1; modeled on production
// membership tables like Gigablast's Hostdb): one flat entry per global
// node id with its adapter inventory, gateway role, and liveness state.
//
// Routing layers consult the directory at O(1) cost on hot paths
// (`alive()` is a vector index), and react to deaths through the
// *liveness epoch*: every mark_dead() bumps a session-global counter, so
// a cached route is valid exactly while the epoch it was computed under
// still matches. In the simulator all state updates are synchronous
// calls, which makes the epoch the total order of membership changes —
// the fwd layer re-resolves gateway choices against the current healthy
// sets and uses the epoch as evidence in stats and tests.
//
// The directory is owned by mad::Session: adapters are filled from the
// network definitions at construction, gateway roles are registered by
// the virtual channels built over the session (fwd/virtual_channel.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mad2::mad {

/// `topology` config stanza: opt-in resilient multi-gateway routing for
/// virtual channels (see docs/ROUTING.md). Off by default — without the
/// stanza the forwarding wire format and routing behavior are
/// bit-identical to the single-gateway data path.
struct TopologyConfig {
  bool enabled = false;
  /// Salt folded into the deterministic flow -> gateway spreading hash;
  /// lets deployments (and seed sweeps) re-deal the flow placement
  /// without changing the flow identities.
  std::uint64_t spread_salt = 0;
  /// Per-flow cap on retained (sent but unconfirmed) packets. The sender
  /// blocks when the retain buffer is full, so the failover replay memory
  /// is bounded; confirmations (in-order delivery) free slots.
  std::size_t replay_quota = 1024;
};

class Hostdb {
 public:
  struct HostEntry {
    /// Names of the networks this node has an adapter on.
    std::vector<std::string> adapters;
    bool gateway = false;
    bool alive = true;
    /// Epoch at which the node died; 0 while alive.
    std::uint64_t death_epoch = 0;
  };

  /// (Re)build the directory for `node_count` dense global node ids.
  void reset(std::size_t node_count);

  [[nodiscard]] std::size_t size() const { return hosts_.size(); }
  [[nodiscard]] const HostEntry& host(std::uint32_t node) const;

  /// Adapter inventory, filled from the session's network definitions.
  void add_adapter(std::uint32_t node, const std::string& network);
  /// Role registration by the routing layers (virtual-channel gateways).
  void set_gateway_role(std::uint32_t node);

  [[nodiscard]] bool alive(std::uint32_t node) const {
    return hosts_[node].alive;
  }
  [[nodiscard]] bool is_gateway(std::uint32_t node) const {
    return hosts_[node].gateway;
  }

  /// Liveness epoch: 0 initially, +1 per death. Routes cached under an
  /// older epoch must be re-resolved against the current healthy sets.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t dead_count() const { return dead_; }

  /// Declare `node` dead and bump the epoch. Idempotent: marking an
  /// already-dead node changes nothing and returns false, so the same
  /// failure reported through several links bumps the epoch once.
  bool mark_dead(std::uint32_t node);

 private:
  std::vector<HostEntry> hosts_;
  std::uint64_t epoch_ = 0;
  std::size_t dead_ = 0;
};

}  // namespace mad2::mad
