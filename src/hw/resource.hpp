// Shared hardware resources with chunked, exclusive occupancy.
//
// A ChunkedResource models a bus or link: at most one transfer occupies it
// at a time, and long transfers are split into chunks so that concurrent
// streams interleave — the mechanism behind every contention effect in the
// paper's Section 6.2 (gateway PCI bus saturation, DMA-starves-PIO).
//
// Two priority classes are supported: class 0 (DMA bus masters) and
// class 1 (programmed I/O). With `strict_priority`, pending class-0 chunks
// are always granted before class-1 chunks — this reproduces the paper's
// observation that Myrinet receive DMA slows concurrent SCI PIO sends by
// a factor of two (Section 6.2.3).
#pragma once

#include <cstdint>
#include <string>

#include "sim/sync.hpp"
#include "sim/time.hpp"

namespace mad2::hw {

enum class TxClass : unsigned {
  kDma = 0,  // bus-master burst (NIC DMA engines)
  kPio = 1,  // CPU programmed I/O (mapped-segment stores)
};

/// See file comment. All methods must be called from simulator fibers.
class ChunkedResource {
 public:
  struct Params {
    std::string name = "bus";
    /// Transfers are sliced into chunks of this many bytes.
    std::uint32_t chunk_bytes = 4096;
    /// Fixed arbitration cost added to every chunk.
    sim::Duration per_chunk_overhead = 0;
    /// Fractional cost increase when consecutive chunks come from
    /// different initiators: alternation breaks long bursts, so each
    /// chunk moves at reduced efficiency. Proportional (not fixed) so tiny
    /// transactions are not over-taxed. This is what erodes full-duplex
    /// PCI bandwidth on gateway nodes (Section 6.2.2).
    double turnaround_factor = 0.0;
    /// Same, for PIO chunks specifically. Programmed I/O suffers more from
    /// losing the bus (the CPU's write-combining pipeline drains and must
    /// refill), which is why concurrent DMA slows SCI sends by about a
    /// factor of two in Section 6.2.3.
    double pio_turnaround_factor = 0.0;
    /// Grant pending kDma chunks strictly before kPio chunks.
    bool strict_priority = false;
  };

  ChunkedResource(sim::Simulator* simulator, Params params)
      : simulator_(simulator), params_(std::move(params)) {}

  /// Move `bytes` through the resource at `mbs` (decimal MB/s), blocking
  /// the calling fiber until done. `initiator` identifies the bus master
  /// for turnaround accounting (e.g. a NIC id or a CPU id).
  void transfer(std::uint64_t bytes, double mbs, TxClass tx_class,
                std::uint64_t initiator);

  /// Total virtual time this resource was occupied.
  [[nodiscard]] sim::Duration busy_time() const { return busy_time_; }
  [[nodiscard]] std::uint64_t bytes_transferred() const {
    return bytes_transferred_;
  }
  [[nodiscard]] const Params& params() const { return params_; }

 private:
  struct Waiter {
    sim::Fiber* fiber;
    TxClass tx_class;
    bool granted = false;
  };

  void acquire(TxClass tx_class);
  void yield_point(TxClass tx_class);  // chunk-boundary re-arbitration
  void release();
  void grant_next();

  sim::Simulator* simulator_;
  Params params_;
  // Ownership is handed off directly to the next waiter on release (FIFO,
  // or DMA-first under strict_priority), so concurrent streams interleave
  // at chunk granularity instead of one stream monopolizing the resource.
  std::deque<Waiter*> waiters_;
  bool busy_ = false;
  bool has_last_initiator_ = false;
  std::uint64_t last_initiator_ = 0;
  sim::Duration busy_time_ = 0;
  std::uint64_t bytes_transferred_ = 0;
};

}  // namespace mad2::hw
