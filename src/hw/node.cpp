#include "hw/node.hpp"

namespace mad2::hw {

HostParams HostParams::pentium_ii_450() { return HostParams{}; }

Node::Node(sim::Simulator* simulator, std::uint32_t id, std::string name,
           HostParams params)
    : simulator_(simulator),
      id_(id),
      name_(std::move(name)),
      params_(params) {
  ChunkedResource::Params bus;
  bus.name = name_ + ".pci";
  bus.chunk_bytes = params_.pci_chunk_bytes;
  bus.turnaround_factor = params_.pci_turnaround_factor;
  bus.pio_turnaround_factor = params_.pci_pio_turnaround_factor;
  bus.strict_priority = true;  // PCI bus masters preempt programmed I/O
  pci_bus_ = std::make_unique<ChunkedResource>(simulator_, std::move(bus));
}

void Node::charge_memcpy(std::uint64_t bytes) {
  // Outside fiber context (session setup), work is free: virtual time has
  // not started for the application yet.
  if (simulator_->current() == nullptr) return;
  mem_.memcpy_bytes += bytes;
  simulator_->advance(sim::transfer_time(bytes, params_.memcpy_mbs));
}

}  // namespace mad2::hw
