// A simulated cluster node: identity, its PCI bus, and host memory costs.
//
// Calibration target is the paper's testbed — dual Intel Pentium II
// 450 MHz, 128 MB RAM, one 33 MHz / 32-bit PCI bus per node (Section 5.1):
//   - PCI peak:        33 MHz * 4 B    = 132 MB/s
//   - practical DMA:   ~126 MB/s sustained bursts (what raw BIP reaches)
//   - practical PIO:   ~85 MB/s write-combined stores (what SCI PIO does)
//   - host memcpy:     ~180 MB/s (PII-450 copy loop through L2)
// The turnaround penalty erodes full-duplex throughput on gateway nodes
// exactly as Section 6.2.2 reports (60 MB/s one-way -> ~49.5 MB/s when
// both directions are active).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hw/resource.hpp"
#include "sim/simulator.hpp"

namespace mad2::hw {

/// Per-node host-memory traffic counters. `memcpy_bytes` mirrors the
/// virtual time charged through charge_memcpy (setup-phase copies outside
/// fiber context are free and therefore not counted); the allocation /
/// recycle counters are fed by buffer pools (e.g. the forwarding layer's
/// PacketPool) so benches and tests can assert steady-state behaviour.
struct MemCounters {
  std::uint64_t memcpy_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t pool_recycle_count = 0;
  /// Bytes currently pinned for NIC access (a gauge: registration adds,
  /// deregistration subtracts), plus cumulative pin/unpin counts — fed by
  /// the registration-capable drivers (IB, VIA) so registration-cache
  /// behaviour is observable like alloc/memcpy already are.
  std::uint64_t pinned_bytes = 0;
  std::uint64_t reg_count = 0;
  std::uint64_t dereg_count = 0;

  void merge(const MemCounters& other) {
    memcpy_bytes += other.memcpy_bytes;
    alloc_count += other.alloc_count;
    pool_recycle_count += other.pool_recycle_count;
    pinned_bytes += other.pinned_bytes;
    reg_count += other.reg_count;
    dereg_count += other.dereg_count;
  }
};

struct HostParams {
  /// Sustained DMA bandwidth a bus-master NIC achieves on this bus.
  double pci_dma_mbs = 126.0;
  /// Sustained PIO (CPU store) bandwidth into a mapped device window.
  double pci_pio_mbs = 85.0;
  /// PCI arbitration granularity.
  std::uint32_t pci_chunk_bytes = 4096;
  /// Fractional efficiency loss per chunk when bus ownership alternates
  /// between masters (burst-breaking; see ChunkedResource).
  double pci_turnaround_factor = 0.35;
  /// The same loss for PIO chunks (worse: write-combining refill).
  double pci_pio_turnaround_factor = 2.0;
  /// Host memory copy bandwidth (static-buffer BMM copies, etc.).
  double memcpy_mbs = 180.0;

  /// The paper's testbed node (see file comment).
  static HostParams pentium_ii_450();
};

/// One cluster node. Owned by a topology/session object; NIC ports attach
/// to its PCI bus.
class Node {
 public:
  Node(sim::Simulator* simulator, std::uint32_t id, std::string name,
       HostParams params);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const HostParams& params() const { return params_; }
  [[nodiscard]] sim::Simulator* simulator() const { return simulator_; }
  [[nodiscard]] ChunkedResource& pci_bus() { return *pci_bus_; }

  /// Charge the calling fiber for a host-memory copy of `bytes`
  /// (does not touch the PCI bus).
  void charge_memcpy(std::uint64_t bytes);

  /// Host-memory traffic accounting (see MemCounters).
  [[nodiscard]] const MemCounters& mem() const { return mem_; }
  void count_alloc() { ++mem_.alloc_count; }
  void count_pool_recycle() { ++mem_.pool_recycle_count; }
  void count_mem_register(std::uint64_t bytes) {
    mem_.pinned_bytes += bytes;
    ++mem_.reg_count;
  }
  void count_mem_deregister(std::uint64_t bytes) {
    mem_.pinned_bytes -= bytes <= mem_.pinned_bytes ? bytes : mem_.pinned_bytes;
    ++mem_.dereg_count;
  }

  /// Charge a fixed CPU cost (protocol bookkeeping, syscalls, ...).
  /// Free outside fiber context (session setup).
  void charge_cpu(sim::Duration d) {
    if (simulator_->current() == nullptr) return;
    simulator_->advance(d);
  }

  /// Unique initiator id for the host CPU on this node's bus.
  [[nodiscard]] std::uint64_t cpu_initiator_id() const {
    return (static_cast<std::uint64_t>(id_) << 8) | 0xff;
  }
  /// Initiator id for NIC `slot` (0..254) on this node's bus.
  [[nodiscard]] std::uint64_t nic_initiator_id(std::uint32_t slot) const {
    return (static_cast<std::uint64_t>(id_) << 8) | slot;
  }

 private:
  sim::Simulator* simulator_;
  std::uint32_t id_;
  std::string name_;
  HostParams params_;
  MemCounters mem_;
  std::unique_ptr<ChunkedResource> pci_bus_;
};

}  // namespace mad2::hw
