#include "hw/resource.hpp"

#include <algorithm>

namespace mad2::hw {

void ChunkedResource::transfer(std::uint64_t bytes, double mbs,
                               TxClass tx_class, std::uint64_t initiator) {
  MAD2_CHECK(mbs > 0.0, "transfer at non-positive bandwidth");
  if (bytes == 0) return;

  std::uint64_t remaining = bytes;
  acquire(tx_class);
  for (;;) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(remaining, params_.chunk_bytes);

    sim::Duration cost =
        sim::transfer_time(chunk, mbs) + params_.per_chunk_overhead;
    if (has_last_initiator_ && last_initiator_ != initiator) {
      const double factor = tx_class == TxClass::kPio
                                ? params_.pio_turnaround_factor
                                : params_.turnaround_factor;
      cost += static_cast<sim::Duration>(
          static_cast<double>(sim::transfer_time(chunk, mbs)) * factor);
    }
    last_initiator_ = initiator;
    has_last_initiator_ = true;

    busy_time_ += cost;
    bytes_transferred_ += chunk;
    simulator_->advance(cost);
    remaining -= chunk;
    if (remaining == 0) break;
    yield_point(tx_class);
  }
  release();
}

void ChunkedResource::acquire(TxClass tx_class) {
  // Invariant: waiters_ is non-empty only while busy_ (release() hands off
  // directly). So an idle resource is granted immediately.
  if (!busy_) {
    busy_ = true;
    return;
  }
  Waiter waiter{simulator_->current(), tx_class, false};
  MAD2_CHECK(waiter.fiber != nullptr, "acquire() outside a fiber");
  waiters_.push_back(&waiter);
  while (!waiter.granted) simulator_->block_current();
}

void ChunkedResource::yield_point(TxClass tx_class) {
  if (waiters_.empty()) return;  // keep ownership; no re-arbitration needed
  if (params_.strict_priority && tx_class == TxClass::kDma) {
    // A bus-master DMA burst keeps its continuous request asserted; only
    // another pending DMA request forces it to share.
    bool dma_waiting = false;
    for (const Waiter* waiter : waiters_) {
      if (waiter->tx_class == TxClass::kDma) {
        dma_waiting = true;
        break;
      }
    }
    if (!dma_waiting) return;
  }
  // Hand the resource to the next waiter and queue up behind it.
  Waiter self{simulator_->current(), tx_class, false};
  waiters_.push_back(&self);
  grant_next();
  while (!self.granted) simulator_->block_current();
}

void ChunkedResource::release() {
  if (waiters_.empty()) {
    busy_ = false;
    return;
  }
  grant_next();
}

void ChunkedResource::grant_next() {
  // Pick the next owner: FIFO, or the oldest DMA request under strict
  // priority. Ownership transfers directly (busy_ stays true).
  auto it = waiters_.begin();
  if (params_.strict_priority) {
    for (auto candidate = waiters_.begin(); candidate != waiters_.end();
         ++candidate) {
      if ((*candidate)->tx_class == TxClass::kDma) {
        it = candidate;
        break;
      }
    }
  }
  Waiter* next = *it;
  waiters_.erase(it);
  next->granted = true;
  simulator_->wake(next->fiber);
}

}  // namespace mad2::hw
