#include "nexus/nexus.hpp"

namespace mad2::nexus {

NexusWorld::NexusWorld(mad::Session& session, std::string channel_name,
                       NexusCosts costs)
    : session_(&session),
      channel_name_(std::move(channel_name)),
      costs_(costs) {
  for (std::uint32_t node : session_->channel(channel_name_).nodes()) {
    contexts_.emplace(node,
                      std::unique_ptr<Context>(new Context(this, node)));
  }
}

NexusWorld::~NexusWorld() = default;

Context& NexusWorld::context(std::uint32_t node) {
  auto it = contexts_.find(node);
  MAD2_CHECK(it != contexts_.end(), "node is not part of this Nexus world");
  return *it->second;
}

Context::Context(NexusWorld* world, std::uint32_t node)
    : world_(world), node_(node) {
  world_->session().simulator().spawn_daemon(
      "nexus.dispatch." + std::to_string(node), [this] { dispatch_loop(); });
}

void Context::register_handler(HandlerId id, Handler handler) {
  const bool inserted =
      handlers_.emplace(id, Registration{std::move(handler), false}).second;
  MAD2_CHECK(inserted, "handler id registered twice");
}

void Context::register_threaded_handler(HandlerId id, Handler handler) {
  const bool inserted =
      handlers_.emplace(id, Registration{std::move(handler), true}).second;
  MAD2_CHECK(inserted, "handler id registered twice");
}

void Context::rsr(std::uint32_t dst, HandlerId id,
                  std::span<const std::byte> payload) {
  auto& node = world_->session().node(node_);
  node.charge_cpu(world_->costs().send);
  mad::ChannelEndpoint& ep =
      world_->session().endpoint(world_->channel_name(), node_);
  mad::Connection& conn = ep.begin_packing(dst);
  const RsrHeader header{id, static_cast<std::uint32_t>(payload.size())};
  mad::mad_pack_value(conn, header, mad::send_CHEAPER, mad::receive_EXPRESS);
  conn.pack(payload, mad::send_CHEAPER, mad::receive_CHEAPER);
  conn.end_packing();
}

void Context::dispatch_loop() {
  mad::ChannelEndpoint& ep =
      world_->session().endpoint(world_->channel_name(), node_);
  auto& node = world_->session().node(node_);
  std::vector<std::byte> payload;
  for (;;) {
    mad::Connection& conn = ep.begin_unpacking();
    RsrHeader header{};
    mad::mad_unpack_value(conn, header, mad::send_CHEAPER,
                          mad::receive_EXPRESS);
    payload.resize(header.size);
    conn.unpack(payload, mad::send_CHEAPER, mad::receive_CHEAPER);
    conn.end_unpacking();

    node.charge_cpu(world_->costs().dispatch);
    auto it = handlers_.find(header.handler);
    MAD2_CHECK(it != handlers_.end(), "RSR for unregistered handler");
    if (it->second.threaded) {
      // Handler thread: own fiber, own payload copy; the dispatcher moves
      // straight on to the next RSR.
      const std::uint32_t src = conn.remote();
      Handler& handler = it->second.handler;
      world_->session().simulator().spawn(
          "nexus.handler." + std::to_string(node_),
          [src, &handler, data = payload] {
            ReadBuffer reader(data);
            handler(src, reader);
          });
    } else {
      ReadBuffer reader(payload);
      it->second.handler(conn.remote(), reader);
    }
  }
}

}  // namespace mad2::nexus
