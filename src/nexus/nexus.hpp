// Mini-Nexus over Madeleine II (paper Section 5.3.2).
//
// Nexus's communication primitive is the remote service request (RSR): a
// buffer is constructed at a startpoint, shipped to a context (endpoint),
// and a registered handler runs there with the buffer as argument. Here
// Madeleine is "seen as one protocol by Nexus": an RSR becomes one
// Madeleine message — {handler id, size} packed receive_EXPRESS, payload
// receive_CHEAPER — and a per-node dispatcher fiber runs the handlers.
//
// Nexus's heavier machinery (global pointer tables, thread dispatch,
// protocol negotiation) is modeled as fixed CPU costs on both sides; this
// is what puts Nexus/Madeleine at ~20 us on SCI where raw Madeleine takes
// 3.9 us (Figure 7).
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "mad/madeleine.hpp"

namespace mad2::nexus {

using HandlerId = std::uint32_t;

/// Typed writer for RSR payloads (the nexus_put_* family).
class WriteBuffer {
 public:
  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const std::byte*>(&value);
    data_.insert(data_.end(), bytes, bytes + sizeof(T));
  }
  void put_bytes(std::span<const std::byte> bytes) {
    data_.insert(data_.end(), bytes.begin(), bytes.end());
  }
  [[nodiscard]] std::span<const std::byte> bytes() const { return data_; }

 private:
  std::vector<std::byte> data_;
};

/// Typed reader for RSR payloads (the nexus_get_* family).
class ReadBuffer {
 public:
  explicit ReadBuffer(std::span<const std::byte> data) : data_(data) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    MAD2_CHECK(offset_ + sizeof(T) <= data_.size(), "RSR buffer underrun");
    std::memcpy(&value, data_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }
  std::span<const std::byte> get_bytes(std::size_t n) {
    MAD2_CHECK(offset_ + n <= data_.size(), "RSR buffer underrun");
    auto result = data_.subspan(offset_, n);
    offset_ += n;
    return result;
  }
  [[nodiscard]] std::size_t remaining() const {
    return data_.size() - offset_;
  }

 private:
  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

struct NexusCosts {
  /// Startpoint-side RSR issue cost (buffer mgmt, protocol selection).
  sim::Duration send = sim::from_us(5.0);
  /// Context-side dispatch cost (table lookup, handler thread hand-off).
  sim::Duration dispatch = sim::from_us(8.0);
};

class NexusWorld;

/// One node's Nexus context: handler table + dispatcher.
class Context {
 public:
  /// Handler signature: (source node, payload reader).
  using Handler = std::function<void(std::uint32_t, ReadBuffer&)>;

  /// Register a *non-threaded* handler (Nexus terminology): it runs on
  /// the dispatcher and must not block for long, or it delays later RSRs.
  void register_handler(HandlerId id, Handler handler);

  /// Register a *threaded* handler: every invocation runs in a fresh
  /// fiber with its own copy of the payload, so it may block (issue RSRs
  /// and wait, sleep, compute) without stalling the dispatcher — Nexus's
  /// handler-thread model.
  void register_threaded_handler(HandlerId id, Handler handler);

  /// Issue an RSR: run handler `id` on node `dst` with `payload`.
  void rsr(std::uint32_t dst, HandlerId id,
           std::span<const std::byte> payload);
  void rsr(std::uint32_t dst, HandlerId id, const WriteBuffer& buffer) {
    rsr(dst, id, buffer.bytes());
  }

  [[nodiscard]] std::uint32_t node() const { return node_; }
  [[nodiscard]] NexusWorld& world() { return *world_; }

 private:
  friend class NexusWorld;
  Context(NexusWorld* world, std::uint32_t node);

  void dispatch_loop();

  struct RsrHeader {
    HandlerId handler;
    std::uint32_t size;
  };

  NexusWorld* world_;
  std::uint32_t node_;
  struct Registration {
    Handler handler;
    bool threaded = false;
  };
  std::map<HandlerId, Registration> handlers_;
};

/// The Nexus instance over one Madeleine channel.
class NexusWorld {
 public:
  NexusWorld(mad::Session& session, std::string channel_name,
             NexusCosts costs = NexusCosts{});
  ~NexusWorld();

  [[nodiscard]] Context& context(std::uint32_t node);
  [[nodiscard]] mad::Session& session() { return *session_; }
  [[nodiscard]] const std::string& channel_name() const {
    return channel_name_;
  }
  [[nodiscard]] const NexusCosts& costs() const { return costs_; }

 private:
  mad::Session* session_;
  std::string channel_name_;
  NexusCosts costs_;
  std::map<std::uint32_t, std::unique_ptr<Context>> contexts_;
};

}  // namespace mad2::nexus
