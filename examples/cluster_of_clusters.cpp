// Clusters of clusters (paper Section 6): an SCI cluster and a Myrinet
// cluster joined by a gateway node carrying both NICs. Applications talk
// through a *virtual channel* — the same pack/unpack interface, with the
// Generic TM fragmenting messages into fixed-MTU self-described packets
// and the gateway running the dual-buffered forwarding pipeline of
// Figure 9.
//
// Topology:
//   SCI cluster:     nodes 0, 3     -+
//                                      +- gateway: node 1 (both NICs)
//   Myrinet cluster: nodes 2, 4     -+
//
// Build & run:  ./build/examples/cluster_of_clusters
#include <cstdio>
#include <vector>

#include "fwd/virtual_channel.hpp"
#include "util/bytes.hpp"

using namespace mad2;

int main() {
  mad::SessionConfig config;
  config.node_count = 5;
  mad::NetworkDef sci;
  sci.name = "sci0";
  sci.kind = mad::NetworkKind::kSisci;
  sci.nodes = {0, 3, 1};  // node 1 is the gateway
  mad::NetworkDef myri;
  myri.name = "myri0";
  myri.kind = mad::NetworkKind::kBip;
  myri.nodes = {1, 2, 4};
  config.networks = {sci, myri};
  // Dedicated hop channels for the virtual channel.
  config.channels = {mad::ChannelDef{"hop_sci", "sci0"},
                     mad::ChannelDef{"hop_myri", "myri0"}};
  mad::Session session(std::move(config));

  fwd::VirtualChannelDef vdef;
  vdef.name = "intercluster";
  vdef.hops = {"hop_sci", "hop_myri"};
  vdef.mtu = 16 * 1024;  // Section 6.2.1's suggested packet size
  fwd::VirtualChannel vc(session, vdef);

  const std::size_t kArray = 500000;

  // Node 0 (SCI cluster) sends a large array to node 2 (Myrinet cluster).
  session.spawn(0, "sci_app", [&](mad::NodeRuntime& rt) {
    auto payload = make_pattern_buffer(kArray, 42);
    const sim::Time t0 = rt.simulator().now();
    auto& conn = vc.endpoint(0).begin_packing(2);
    const std::uint32_t n = kArray;
    mad_pack_value(conn, n, mad::send_CHEAPER, mad::receive_EXPRESS);
    conn.pack(payload);
    conn.end_packing();
    std::printf("[node0/SCI]  sent %zu B across the gateway in %.0f us\n",
                kArray, sim::to_us(rt.simulator().now() - t0));

    // And wait for the reply from the other cluster.
    auto& in = vc.endpoint(0).begin_unpacking();
    std::uint32_t ok = 0;
    mad_unpack_value(in, ok, mad::send_CHEAPER, mad::receive_EXPRESS);
    in.end_unpacking();
    std::printf("[node0/SCI]  node2 verified the data: %s\n",
                ok != 0 ? "yes" : "NO");
  });

  session.spawn(2, "myri_app", [&](mad::NodeRuntime&) {
    auto& conn = vc.endpoint(2).begin_unpacking();
    std::uint32_t n = 0;
    mad_unpack_value(conn, n, mad::send_CHEAPER, mad::receive_EXPRESS);
    std::vector<std::byte> data(n);
    conn.unpack(data);
    conn.end_unpacking();
    const bool ok = verify_pattern(data, 42);
    std::printf("[node2/Myri] received %u B from node %u via gateway; "
                "integrity: %s\n",
                n, conn.remote(), ok ? "ok" : "CORRUPT");

    auto& reply = vc.endpoint(2).begin_packing(0);
    const std::uint32_t flag = ok ? 1 : 0;
    mad_pack_value(reply, flag, mad::send_CHEAPER, mad::receive_EXPRESS);
    reply.end_packing();
  });

  // Meanwhile intra-cluster traffic on the same virtual channel bypasses
  // the gateway entirely (nodes 3 -> 0 are both on SCI).
  session.spawn(3, "sci_peer", [&](mad::NodeRuntime&) {
    auto payload = make_pattern_buffer(1000, 7);
    auto& conn = vc.endpoint(3).begin_packing(4);
    conn.pack(payload);
    conn.end_packing();
    std::printf("[node3/SCI]  sent 1000 B to node 4 (crosses the gateway "
                "once)\n");
  });
  session.spawn(4, "myri_peer", [&](mad::NodeRuntime&) {
    auto& conn = vc.endpoint(4).begin_unpacking();
    std::vector<std::byte> data(1000);
    conn.unpack(data);
    conn.end_unpacking();
    std::printf("[node4/Myri] got %s from node %u\n",
                verify_pattern(data, 7) ? "intact data" : "CORRUPT data",
                conn.remote());
  });

  const Status status = session.run();
  std::printf("session: %s (virtual time: %.2f ms)\n",
              status.to_string().c_str(),
              sim::to_us(session.simulator().now()) / 1000.0);
  return status.is_ok() ? 0 : 1;
}
