// Multi-protocol sessions (paper Section 2.1): one application controlling
// several networks at once, "dynamically switching from one network to
// another according to its communication needs".
//
// Both nodes carry an SCI NIC and a Myrinet NIC. The application opens a
// channel on each and routes every message over the network that is best
// for its size — SCI below the ~16 kB crossover (lower latency), Myrinet
// above it (higher bandwidth). A control channel on TCP carries the final
// statistics, demonstrating three interfaces in one session.
//
// Build & run:  ./build/examples/multirail
#include <cstdio>
#include <string>
#include <vector>

#include "mad/madeleine.hpp"

using namespace mad2;

namespace {
constexpr std::size_t kCrossover = 16 * 1024;  // Section 6.2.1

const char* pick_rail(std::size_t size) {
  return size < kCrossover ? "sci" : "myri";
}
}  // namespace

int main() {
  mad::SessionConfig config;
  config.node_count = 2;
  mad::NetworkDef sci;
  sci.name = "sci0";
  sci.kind = mad::NetworkKind::kSisci;
  sci.nodes = {0, 1};
  mad::NetworkDef myri;
  myri.name = "myri0";
  myri.kind = mad::NetworkKind::kBip;
  myri.nodes = {0, 1};
  mad::NetworkDef eth;
  eth.name = "eth0";
  eth.kind = mad::NetworkKind::kTcp;
  eth.nodes = {0, 1};
  config.networks = {sci, myri, eth};
  config.channels = {mad::ChannelDef{"sci", "sci0"},
                     mad::ChannelDef{"myri", "myri0"},
                     mad::ChannelDef{"ctrl", "eth0"}};
  mad::Session session(std::move(config));

  const std::vector<std::size_t> sizes{64,        2048,      8192,
                                       32 * 1024, 256 * 1024};

  session.spawn(0, "sender", [&](mad::NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      const std::string rail = pick_rail(size);
      std::vector<std::byte> payload(size, std::byte{0xAB});
      const sim::Time t0 = rt.simulator().now();
      auto& conn = rt.channel(rail).begin_packing(1);
      conn.pack(payload);
      conn.end_packing();
      // One-byte app-level ack so we can time the full delivery.
      auto& ack = rt.channel(rail).begin_unpacking();
      std::byte a;
      ack.unpack(std::span(&a, 1));
      ack.end_unpacking();
      std::printf("[sender] %8zu B via %-4s : %9.2f us round trip\n", size,
                  rail.c_str(), sim::to_us(rt.simulator().now() - t0));
    }
    // Wrap up over the commodity control network.
    auto& done = rt.channel("ctrl").begin_packing(1);
    const std::uint32_t count = static_cast<std::uint32_t>(sizes.size());
    mad_pack_value(done, count, mad::send_CHEAPER, mad::receive_EXPRESS);
    done.end_packing();
  });

  session.spawn(1, "receiver", [&](mad::NodeRuntime& rt) {
    for (std::size_t size : sizes) {
      const std::string rail = pick_rail(size);
      auto& conn = rt.channel(rail).begin_unpacking();
      std::vector<std::byte> data(size);
      conn.unpack(data);
      conn.end_unpacking();
      auto& ack = rt.channel(rail).begin_packing(0);
      std::byte a{1};
      ack.pack(std::span(&a, 1));
      ack.end_packing();
    }
    auto& done = rt.channel("ctrl").begin_unpacking();
    std::uint32_t count = 0;
    mad_unpack_value(done, count, mad::send_CHEAPER, mad::receive_EXPRESS);
    done.end_unpacking();
    std::printf("[receiver] control channel (TCP) confirms %u transfers\n",
                count);
  });

  const Status status = session.run();
  std::printf("session: %s\n", status.to_string().c_str());
  return status.is_ok() ? 0 : 1;
}
