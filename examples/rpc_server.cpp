// RPC over Madeleine II — the workload the library was designed for
// (Section 1: "the implementation of such environments often involves
// remote procedure call ... interactions").
//
// A server node exposes procedures; client nodes call them. Each request
// message is built incrementally: procedure id (EXPRESS — the server
// needs it to dispatch), argument size (EXPRESS — to allocate), argument
// bytes (CHEAPER — shipped the fastest way the network allows). This is
// exactly the multi-level message examination the paper's Section 2.2
// motivates.
//
// Build & run:  ./build/examples/rpc_server
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <vector>

#include "mad/madeleine.hpp"

using namespace mad2;

namespace {

constexpr std::uint32_t kServer = 0;

struct RpcMessage {
  std::uint32_t procedure;
  std::vector<std::byte> argument;
};

/// Send one RPC-shaped message on `channel` (used for calls and replies).
void send_rpc(mad::ChannelEndpoint& channel, std::uint32_t dst,
              std::uint32_t procedure, std::span<const std::byte> argument) {
  auto& conn = mad_begin_packing(channel, dst);
  mad_pack_value(conn, procedure, mad::send_CHEAPER, mad::receive_EXPRESS);
  const std::uint32_t size = static_cast<std::uint32_t>(argument.size());
  mad_pack_value(conn, size, mad::send_CHEAPER, mad::receive_EXPRESS);
  mad_pack(conn, argument, mad::send_CHEAPER, mad::receive_CHEAPER);
  mad_end_packing(conn);
}

/// Receive one RPC-shaped message; returns the sender.
std::uint32_t recv_rpc(mad::ChannelEndpoint& channel, RpcMessage* out) {
  auto& conn = mad_begin_unpacking(channel);
  const std::uint32_t src = conn.remote();
  mad_unpack_value(conn, out->procedure, mad::send_CHEAPER,
                   mad::receive_EXPRESS);
  std::uint32_t size = 0;
  mad_unpack_value(conn, size, mad::send_CHEAPER, mad::receive_EXPRESS);
  out->argument.resize(size);
  mad_unpack(conn, out->argument, mad::send_CHEAPER, mad::receive_CHEAPER);
  mad_end_unpacking(conn);
  return src;
}

}  // namespace

int main() {
  mad::SessionConfig config;
  config.node_count = 4;  // 1 server + 3 clients on an SCI cluster
  mad::NetworkDef sci;
  sci.name = "sci0";
  sci.kind = mad::NetworkKind::kSisci;
  sci.nodes = {0, 1, 2, 3};
  config.networks.push_back(sci);
  config.channels.push_back(mad::ChannelDef{"rpc", "sci0"});
  mad::Session session(std::move(config));

  // --- server -------------------------------------------------------------
  session.spawn(kServer, "server", [&](mad::NodeRuntime& rt) {
    using Procedure =
        std::function<std::vector<std::byte>(std::span<const std::byte>)>;
    std::map<std::uint32_t, Procedure> procedures;
    procedures[1] = [](std::span<const std::byte> arg) {
      // sum_i32: adds up an int array, returns the 64-bit sum.
      std::int64_t sum = 0;
      for (std::size_t i = 0; i + 4 <= arg.size(); i += 4) {
        std::int32_t v;
        std::memcpy(&v, arg.data() + i, 4);
        sum += v;
      }
      std::vector<std::byte> reply(8);
      std::memcpy(reply.data(), &sum, 8);
      return reply;
    };
    procedures[2] = [](std::span<const std::byte> arg) {
      // reverse: returns the bytes reversed.
      return std::vector<std::byte>(arg.rbegin(), arg.rend());
    };

    // Serve 3 clients x 2 calls each.
    for (int handled = 0; handled < 6; ++handled) {
      RpcMessage request;
      const std::uint32_t client = recv_rpc(rt.channel("rpc"), &request);
      auto it = procedures.find(request.procedure);
      MAD2_CHECK(it != procedures.end(), "unknown procedure");
      const auto reply = it->second(request.argument);
      send_rpc(rt.channel("rpc"), client, request.procedure, reply);
      std::printf("[server] proc %u for node %u (%zu B in, %zu B out)\n",
                  request.procedure, client, request.argument.size(),
                  reply.size());
    }
  });

  // --- clients ------------------------------------------------------------
  for (std::uint32_t client = 1; client <= 3; ++client) {
    session.spawn(client, "client" + std::to_string(client),
                  [&, client](mad::NodeRuntime& rt) {
      // Call 1: sum a per-client int array.
      std::vector<std::int32_t> values(1000 * client, 1);
      send_rpc(rt.channel("rpc"), kServer, 1,
               std::as_bytes(std::span(values)));
      RpcMessage reply;
      recv_rpc(rt.channel("rpc"), &reply);
      std::int64_t sum = 0;
      std::memcpy(&sum, reply.argument.data(), 8);
      std::printf("[client %u] sum(%zu ones) = %lld\n", client,
                  values.size(), static_cast<long long>(sum));

      // Call 2: reverse a short string.
      const char* text = "madeleine";
      send_rpc(rt.channel("rpc"), kServer, 2,
               std::as_bytes(std::span(text, std::strlen(text))));
      recv_rpc(rt.channel("rpc"), &reply);
      std::printf("[client %u] reverse(\"%s\") = \"%.*s\"\n", client, text,
                  static_cast<int>(reply.argument.size()),
                  reinterpret_cast<const char*>(reply.argument.data()));
    });
  }

  const Status status = session.run();
  std::printf("session: %s\n", status.to_string().c_str());
  return status.is_ok() ? 0 : 1;
}
