// PM2-style distributed computation (paper Section 1: Madeleine II was
// built for RPC-based multithreaded environments like PM2).
//
// A coordinator distributes chunks of a dot product to worker services
// with asynchronous RPCs, overlapping all the calls; workers may
// themselves be busy with other requests thanks to thread-per-request
// dispatch. The session is described in the text configuration format.
//
// Build & run:  ./build/examples/pm2_rpc
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "mad/config_parser.hpp"
#include "pm2/pm2.hpp"

using namespace mad2;

namespace {
constexpr pm2::ServiceId kDotProduct = 1;

std::vector<std::byte> encode(const std::vector<double>& values) {
  std::vector<std::byte> out(values.size() * sizeof(double));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}
}  // namespace

int main() {
  auto parsed = mad::parse_session_config(R"(
# one coordinator + three workers on a Myrinet cluster
nodes 4
network myri0 bip 0 1 2 3
channel pm2 myri0
)");
  MAD2_CHECK(parsed.is_ok(), "config must parse");
  mad::Session session(std::move(parsed.value()));
  pm2::Pm2World world(session, "pm2");

  // Each worker: dot product of the two halves of the argument.
  for (std::uint32_t worker = 1; worker <= 3; ++worker) {
    world.node(worker).register_service(
        kDotProduct,
        [&session, worker](std::uint32_t,
                           std::span<const std::byte> argument) {
          const std::size_t doubles = argument.size() / sizeof(double);
          std::vector<double> values(doubles);
          std::memcpy(values.data(), argument.data(), argument.size());
          const std::size_t half = doubles / 2;
          double sum = 0.0;
          for (std::size_t i = 0; i < half; ++i) {
            sum += values[i] * values[half + i];
          }
          // Model some compute time so the overlap is visible.
          session.simulator().advance(sim::microseconds(200));
          std::vector<std::byte> reply(sizeof(double));
          std::memcpy(reply.data(), &sum, sizeof(double));
          std::printf("[worker %u] partial dot product = %.1f\n", worker,
                      sum);
          return reply;
        });
  }

  session.spawn(0, "coordinator", [&](mad::NodeRuntime& rt) {
    // v = [1, 2, ..., 3N]; w = all ones. dot(v, w) = sum(v).
    const std::size_t per_worker = 1000;
    std::vector<pm2::RpcFuture> futures;
    const sim::Time start = rt.simulator().now();
    for (std::uint32_t worker = 1; worker <= 3; ++worker) {
      std::vector<double> chunk;  // first half v-slice, second half ones
      for (std::size_t i = 0; i < per_worker; ++i) {
        chunk.push_back(
            static_cast<double>((worker - 1) * per_worker + i + 1));
      }
      chunk.insert(chunk.end(), per_worker, 1.0);
      futures.push_back(
          world.node(0).async_rpc(worker, kDotProduct, encode(chunk)));
    }
    double total = 0.0;
    for (auto& future : futures) {
      const auto reply = world.node(0).wait(future);
      double partial = 0.0;
      std::memcpy(&partial, reply.data(), sizeof(double));
      total += partial;
    }
    const double n = 3.0 * per_worker;
    std::printf("[coordinator] dot product = %.1f (expected %.1f) in "
                "%.0f us (three calls overlapped)\n",
                total, n * (n + 1) / 2.0,
                sim::to_us(rt.simulator().now() - start));
  });

  const Status status = session.run();
  std::printf("session: %s\n", status.to_string().c_str());
  return status.is_ok() ? 0 : 1;
}
