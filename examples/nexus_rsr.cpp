// Nexus/Madeleine II example (paper Section 5.3.2): remote service
// requests with typed buffers. A coordinator farms squaring work out to
// worker contexts; workers reply through a second handler.
//
// Build & run:  ./build/examples/nexus_rsr
#include <cstdio>
#include <vector>

#include "nexus/nexus.hpp"

using namespace mad2;

namespace {
constexpr nexus::HandlerId kSquare = 1;
constexpr nexus::HandlerId kResult = 2;
}  // namespace

int main() {
  mad::SessionConfig config;
  config.node_count = 4;
  mad::NetworkDef sci;
  sci.name = "sci0";
  sci.kind = mad::NetworkKind::kSisci;
  sci.nodes = {0, 1, 2, 3};
  config.networks.push_back(sci);
  config.channels.push_back(mad::ChannelDef{"nexus", "sci0"});
  mad::Session session(std::move(config));

  nexus::NexusWorld world(session, "nexus");

  // Workers: square every value in the request, reply via kResult.
  for (std::uint32_t worker = 1; worker <= 3; ++worker) {
    world.context(worker).register_handler(
        kSquare,
        [&world, worker](std::uint32_t src, nexus::ReadBuffer& request) {
          const auto count = request.get<std::uint32_t>();
          nexus::WriteBuffer reply;
          reply.put(worker);
          reply.put(count);
          for (std::uint32_t i = 0; i < count; ++i) {
            const auto v = request.get<std::uint64_t>();
            reply.put(v * v);
          }
          world.context(worker).rsr(src, kResult, reply);
        });
  }

  // Coordinator: collect replies; stop the session when all are in.
  int outstanding = 3;
  world.context(0).register_handler(
      kResult, [&](std::uint32_t, nexus::ReadBuffer& reply) {
        const auto worker = reply.get<std::uint32_t>();
        const auto count = reply.get<std::uint32_t>();
        std::uint64_t sum = 0;
        for (std::uint32_t i = 0; i < count; ++i) {
          sum += reply.get<std::uint64_t>();
        }
        std::printf("[coordinator] worker %u squared %u values; sum=%llu\n",
                    worker, count, static_cast<unsigned long long>(sum));
        if (--outstanding == 0) session.simulator().stop();
      });

  session.spawn(0, "coordinator", [&](mad::NodeRuntime&) {
    for (std::uint32_t worker = 1; worker <= 3; ++worker) {
      nexus::WriteBuffer request;
      const std::uint32_t count = 4 * worker;
      request.put(count);
      for (std::uint32_t i = 1; i <= count; ++i) {
        request.put<std::uint64_t>(i);
      }
      world.context(0).rsr(worker, kSquare, request);
      std::printf("[coordinator] dispatched %u values to worker %u\n",
                  count, worker);
    }
  });

  const Status status = session.run();
  std::printf("session: %s\n", status.to_string().c_str());
  return status.is_ok() ? 0 : 1;
}
