// madperf — a netperf-style benchmarking utility for Madeleine II.
//
// Runs a latency/bandwidth sweep over any supported network and layer and
// prints the same table format the figure harnesses use. Examples:
//
//   madperf                                   # Madeleine over SISCI
//   madperf --network bip --max 262144
//   madperf --layer nexus --network tcp
//   madperf --config cluster.cfg --channel ch # sweep a configured session
//
// Options:
//   --network bip|sisci|tcp|via|sbp   (default sisci)
//   --layer   mad|nexus               (default mad)
//   --min N   smallest message, bytes (default 4)
//   --max N   largest message, bytes  (default 1 MiB)
//   --iters N ping-pong iterations    (default 20)
//   --config FILE --channel NAME      use a session config file; the
//                                     sweep runs between the channel's
//                                     first two nodes (layer mad only)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "mad/config_parser.hpp"
#include "mad/madeleine.hpp"
#include "nexus/nexus.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mad2;

namespace {

struct Options {
  std::string network = "sisci";
  std::string layer = "mad";
  std::uint64_t min_bytes = 4;
  std::uint64_t max_bytes = 1 << 20;
  int iterations = 20;
  std::string config_path;
  std::string channel = "ch";
};

bool parse_args(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--network") {
      const char* v = next();
      if (!v) return false;
      options->network = v;
    } else if (arg == "--layer") {
      const char* v = next();
      if (!v) return false;
      options->layer = v;
    } else if (arg == "--min") {
      const char* v = next();
      if (!v) return false;
      options->min_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max") {
      const char* v = next();
      if (!v) return false;
      options->max_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--iters") {
      const char* v = next();
      if (!v) return false;
      options->iterations = std::atoi(v);
    } else if (arg == "--config") {
      const char* v = next();
      if (!v) return false;
      options->config_path = v;
    } else if (arg == "--channel") {
      const char* v = next();
      if (!v) return false;
      options->channel = v;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  return options->min_bytes > 0 && options->max_bytes >= options->min_bytes &&
         options->iterations > 0;
}

Result<mad::SessionConfig> build_config(const Options& options) {
  if (!options.config_path.empty()) {
    std::ifstream file(options.config_path);
    if (!file) {
      return invalid_argument("cannot open config file '" +
                              options.config_path + "'");
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    return mad::parse_session_config(buffer.str());
  }
  // Implicit two-node cluster of the requested kind.
  return mad::parse_session_config("nodes 2\nnetwork net0 " +
                                   options.network + " 0 1\nchannel " +
                                   options.channel + " net0\n");
}

double mad_one_way_us(mad::Session& session, const Options& options,
                      std::uint32_t a, std::uint32_t b, std::size_t size) {
  sim::Time start = 0;
  sim::Time end = 0;
  session.spawn(a, "ping", [&, size](mad::NodeRuntime& rt) {
    std::vector<std::byte> payload(size, std::byte{1});
    std::vector<std::byte> back(size);
    start = rt.simulator().now();
    for (int i = 0; i < options.iterations; ++i) {
      auto& out = rt.channel(options.channel).begin_packing(b);
      out.pack(payload);
      out.end_packing();
      auto& in = rt.channel(options.channel).begin_unpacking();
      in.unpack(back);
      in.end_unpacking();
    }
    end = rt.simulator().now();
  });
  session.spawn(b, "pong", [&, size](mad::NodeRuntime& rt) {
    std::vector<std::byte> data(size);
    for (int i = 0; i < options.iterations; ++i) {
      auto& in = rt.channel(options.channel).begin_unpacking();
      in.unpack(data);
      in.end_unpacking();
      auto& out = rt.channel(options.channel).begin_packing(a);
      out.pack(data);
      out.end_packing();
    }
  });
  MAD2_CHECK(session.run().is_ok(), "madperf session failed");
  return sim::to_us(end - start) / (2.0 * options.iterations);
}

double nexus_one_way_us(const Options& options, std::size_t size) {
  auto parsed = build_config(options);
  MAD2_CHECK(parsed.is_ok(), "config failed");
  mad::Session session(std::move(parsed.value()));
  nexus::NexusWorld world(session, options.channel);
  sim::Time start = 0;
  sim::Time end = 0;
  int remaining = options.iterations;
  std::vector<std::byte> payload(size, std::byte{1});
  world.context(1).register_handler(
      1, [&](std::uint32_t src, nexus::ReadBuffer& buffer) {
        world.context(1).rsr(src, 2, buffer.get_bytes(buffer.remaining()));
      });
  world.context(0).register_handler(
      2, [&](std::uint32_t, nexus::ReadBuffer&) {
        if (--remaining == 0) {
          end = session.simulator().now();
          session.simulator().stop();
          return;
        }
        world.context(0).rsr(1, 1, payload);
      });
  session.spawn(0, "client", [&](mad::NodeRuntime& rt) {
    start = rt.simulator().now();
    world.context(0).rsr(1, 1, payload);
  });
  MAD2_CHECK(session.run().is_ok(), "madperf session failed");
  return sim::to_us(end - start) / (2.0 * options.iterations);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, &options)) {
    std::fprintf(stderr,
                 "usage: madperf [--network KIND] [--layer mad|nexus] "
                 "[--min N] [--max N] [--iters N] [--config FILE] "
                 "[--channel NAME]\n");
    return 2;
  }

  PerfSeries series;
  series.label = options.layer + "/" + options.network;
  for (std::uint64_t size :
       geometric_sizes(options.min_bytes, options.max_bytes)) {
    double latency = 0.0;
    if (options.layer == "mad") {
      auto parsed = build_config(options);
      if (!parsed.is_ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().to_string().c_str());
        return 1;
      }
      mad::Session session(std::move(parsed.value()));
      const auto& nodes = session.channel(options.channel).nodes();
      MAD2_CHECK(nodes.size() >= 2, "channel needs at least two nodes");
      latency = mad_one_way_us(session, options, nodes[0], nodes[1], size);
    } else if (options.layer == "nexus") {
      latency = nexus_one_way_us(options, size);
    } else {
      std::fprintf(stderr, "unknown layer '%s'\n", options.layer.c_str());
      return 2;
    }
    series.points.push_back(
        PerfPoint{size, latency, static_cast<double>(size) / latency});
  }
  print_perf_series("madperf — one-way latency / bandwidth", {series});
  std::printf("min latency: %.2f us, peak bandwidth: %.1f MB/s\n",
              series.min_latency_us(), series.peak_bandwidth_mbs());
  return 0;
}
