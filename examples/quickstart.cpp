// Quickstart: the paper's Figure 1 scenario.
//
// A sender ships an array whose size the receiver does not know. The
// receiver first extracts the size with receive_EXPRESS (guaranteed
// available right after the unpack), allocates memory, then extracts the
// array itself with receive_CHEAPER (letting Madeleine II pick the most
// efficient transfer method — on BIP that is a zero-copy rendezvous
// straight into the freshly allocated buffer).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "mad/madeleine.hpp"

using namespace mad2;

int main() {
  // A two-node Myrinet cluster with one channel, as in Section 2.3.
  mad::SessionConfig config;
  config.node_count = 2;
  mad::NetworkDef myrinet;
  myrinet.name = "myri0";
  myrinet.kind = mad::NetworkKind::kBip;
  myrinet.nodes = {0, 1};
  config.networks.push_back(myrinet);
  config.channels.push_back(mad::ChannelDef{"channel", "myri0"});

  mad::Session session(std::move(config));

  session.spawn(0, "sender", [](mad::NodeRuntime& rt) {
    std::vector<std::int32_t> array(100000);
    std::iota(array.begin(), array.end(), 0);
    const std::uint32_t n = static_cast<std::uint32_t>(array.size());

    auto& connection = mad_begin_packing(rt.channel("channel"), 1);
    mad_pack_value(connection, n, mad::send_CHEAPER, mad::receive_EXPRESS);
    mad_pack(connection, std::as_bytes(std::span(array)),
             mad::send_CHEAPER, mad::receive_CHEAPER);
    mad_end_packing(connection);
    std::printf("[sender]   packed %u ints and finalized the message\n", n);
  });

  session.spawn(1, "receiver", [](mad::NodeRuntime& rt) {
    auto& connection = mad_begin_unpacking(rt.channel("channel"));

    // EXPRESS: usable immediately — we need it to size the allocation.
    std::uint32_t n = 0;
    mad_unpack_value(connection, n, mad::send_CHEAPER,
                     mad::receive_EXPRESS);
    std::printf("[receiver] message from node %u announces %u ints\n",
                connection.remote(), n);

    std::vector<std::int32_t> array(n);
    mad_unpack(connection, std::as_writable_bytes(std::span(array)),
               mad::send_CHEAPER, mad::receive_CHEAPER);
    mad_end_unpacking(connection);  // CHEAPER data is guaranteed now

    std::int64_t sum = 0;
    for (std::int32_t v : array) sum += v;
    std::printf("[receiver] received the array; sum = %lld (expected %lld)\n",
                static_cast<long long>(sum),
                static_cast<long long>(n) * (n - 1) / 2);
  });

  const Status status = session.run();
  std::printf("session: %s (virtual time: %.1f us)\n",
              status.to_string().c_str(),
              sim::to_us(session.simulator().now()));
  return status.is_ok() ? 0 : 1;
}
