// MPICH/Madeleine II (ch_mad) example: the classic MPI ping-pong plus a
// small collective round, over an SCI cluster (paper Section 5.3.1).
//
// Build & run:  ./build/examples/mpi_pingpong
#include <cstdio>
#include <vector>

#include "mpi/ch_mad.hpp"

using namespace mad2;

int main() {
  mad::SessionConfig config;
  config.node_count = 4;
  mad::NetworkDef sci;
  sci.name = "sci0";
  sci.kind = mad::NetworkKind::kSisci;
  sci.nodes = {0, 1, 2, 3};
  config.networks.push_back(sci);
  config.channels.push_back(mad::ChannelDef{"mpi", "sci0"});
  mad::Session session(std::move(config));

  mpi::ChMadWorld world(session, "mpi");

  for (int rank = 0; rank < 4; ++rank) {
    session.spawn(rank, "rank" + std::to_string(rank),
                  [&, rank](mad::NodeRuntime& rt) {
      mpi::Comm& comm = world.comm(rank);

      // Ranks 0 and 1 run a ping-pong sweep and report one-way latency.
      if (rank == 0) {
        for (std::size_t size : {4u, 1024u, 65536u, 1048576u}) {
          std::vector<std::byte> payload(size, std::byte{1});
          std::vector<std::byte> back(size);
          const int iterations = 10;
          const sim::Time t0 = rt.simulator().now();
          for (int i = 0; i < iterations; ++i) {
            comm.send(payload, 1, 0);
            comm.recv(back, 1, 0);
          }
          const double one_way =
              sim::to_us(rt.simulator().now() - t0) / (2.0 * iterations);
          std::printf("[mpi] %8zu B : %9.2f us one-way, %7.1f MB/s\n", size,
                      one_way, static_cast<double>(size) / one_way);
        }
      } else if (rank == 1) {
        for (std::size_t size : {4u, 1024u, 65536u, 1048576u}) {
          std::vector<std::byte> data(size);
          for (int i = 0; i < 10; ++i) {
            comm.recv(data, 0, 0);
            comm.send(data, 0, 0);
          }
        }
      }

      // All ranks: a barrier, then an allreduce.
      comm.barrier();
      std::vector<double> value{static_cast<double>(rank + 1)};
      comm.allreduce_sum(value);
      if (rank == 0) {
        std::printf("[mpi] allreduce_sum over ranks 1..4 = %.0f "
                    "(expected 10)\n",
                    value[0]);
      }
    });
  }

  const Status status = session.run();
  std::printf("session: %s\n", status.to_string().c_str());
  return status.is_ok() ? 0 : 1;
}
